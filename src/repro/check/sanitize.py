"""Runtime invariant sanitizer for the simulated hardware model.

The paper's structures carry hard contracts — 2-bit confidence counters,
≤63-line basic blocks, a 63-bit (virtual) / 46-bit (physical) compressed
destination array, a bounded MSHR file — and the reproduction's numbers
are only credible while the model provably stays inside them.  The
:class:`Sanitizer` asserts those contracts *during* simulation:

* **compression round-trip** — every destination array, re-encoded with
  the bit-exact hardware packing of Tables I/II, must decode back to the
  stored pairs and fit the declared payload budget;
* **confidence range** — stored pairs carry confidence in [1, 3] (a
  2-bit counter; zero-confidence pairs must have been invalidated);
* **basic-block size** — entries never exceed ``MAX_BB_SIZE`` (63);
* **history monotonicity** — history-buffer timestamps never decrease,
  and the buffer never exceeds its capacity;
* **entry bit budget** — mode field + payload stay ≤ the declared
  per-entry destination field width;
* **MSHR/L1I consistency** — in-flight lines are never simultaneously
  resident, the file never exceeds its capacity, and the demand
  hit/miss counters always sum to the access counter.

Zero-cost contract: instrumented modules (``entangled_table``,
``history``, ``simulator``) never import this package — hooks are
duck-typed attributes defaulting to ``None`` and guarded by a single
``is None`` check, the same pattern as :mod:`repro.obs`.  A run without
``REPRO_SANITIZE`` never imports this module (subprocess-pinned in the
tests) and produces bit-identical :class:`~repro.sim.stats.SimStats`
signatures.

Failure modes: ``fatal=True`` (the default, ``REPRO_SANITIZE=1``)
raises :class:`~repro.check.errors.InvariantViolation` with the cycle
and a state snapshot; ``fatal=False`` (``REPRO_SANITIZE=report``)
collects violations into :meth:`Sanitizer.report` so a long run can
surface every breach at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.check.errors import InvariantViolation
from repro.core.compression import (
    decode_destinations,
    encode_destinations,
)
from repro.core.entangled_table import MAX_BB_SIZE, MAX_CONFIDENCE


@dataclass
class SanitizerReport:
    """Outcome of a sanitized run: checks performed, violations found."""

    checks: int = 0
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_payload(self) -> dict:
        """JSON-ready summary for telemetry events (:mod:`repro.obs.events`).

        Violations are summarized (count + first few messages), not
        serialized whole: a ledger record must stay one small line.
        """
        return {
            "checks": self.checks,
            "violations": len(self.violations),
            "ok": self.ok,
            "summary": self.summary_line(),
        }

    def summary_line(self) -> str:
        if self.ok:
            return f"sanitizer: {self.checks} checks, no violations"
        return (
            f"sanitizer: {self.checks} checks, "
            f"{len(self.violations)} violation(s): "
            + "; ".join(str(v) for v in self.violations[:5])
            + ("; ..." if len(self.violations) > 5 else "")
        )


class Sanitizer:
    """Checker hooks asserting hardware-model invariants during a run.

    One instance serves one simulation.  ``attach`` wires the checker
    into the simulator's prefetcher structures (duck-typed: prefetchers
    without a ``table``/``history`` simply get no structure hooks).
    """

    def __init__(self, fatal: bool = True) -> None:
        self.fatal = fatal
        self.checks = 0
        self.violations: List[InvariantViolation] = []
        self._sim: Optional[Any] = None

    # -- plumbing -----------------------------------------------------------

    def attach(self, sim: Any) -> None:
        """Install structure hooks on the simulator's prefetcher."""
        self._sim = sim
        table = getattr(sim.prefetcher, "table", None)
        if table is not None:
            table.checker = self
        history = getattr(sim.prefetcher, "history", None)
        if history is not None:
            history.checker = self

    def report(self) -> SanitizerReport:
        return SanitizerReport(checks=self.checks, violations=list(self.violations))

    def _cycle(self) -> Optional[int]:
        return self._sim.cycle if self._sim is not None else None

    def _fail(self, invariant: str, message: str, **context: Any) -> None:
        cycle = self._cycle()
        where = f" at cycle {cycle}" if cycle is not None else ""
        violation = InvariantViolation(
            f"invariant {invariant!r} violated{where}: {message}",
            invariant=invariant,
            cycle=cycle,
            context=context,
        )
        if self.fatal:
            raise violation
        self.violations.append(violation)

    # -- entangled-table invariants -----------------------------------------

    def check_entry(self, table: Any, entry: Any) -> None:
        """Contract of one Entangled-table entry after a mutation."""
        self.checks += 1
        if not 0 <= entry.bb_size <= MAX_BB_SIZE:
            self._fail(
                "bb_size_range",
                f"basic-block size {entry.bb_size} outside [0, {MAX_BB_SIZE}] "
                f"for source 0x{entry.src_line:x}",
                src_line=entry.src_line,
                bb_size=entry.bb_size,
            )
        max_confidence = getattr(table, "max_confidence", MAX_CONFIDENCE)
        for dst_line, confidence in entry.dsts:
            if not 1 <= confidence <= max_confidence:
                self._fail(
                    "confidence_range",
                    f"stored confidence {confidence} outside "
                    f"[1, {max_confidence}] for pair "
                    f"0x{entry.src_line:x}->0x{dst_line:x} "
                    f"(zero-confidence pairs must be invalidated)",
                    src_line=entry.src_line,
                    dst_line=dst_line,
                    confidence=confidence,
                )
        scheme = table.scheme
        if len(entry.dsts) > scheme.max_mode:
            self._fail(
                "dst_count",
                f"{len(entry.dsts)} destinations exceed the maximum mode "
                f"{scheme.max_mode} for source 0x{entry.src_line:x}",
                src_line=entry.src_line,
                count=len(entry.dsts),
            )
            return
        if not entry.dsts:
            return
        try:
            mode, payload = encode_destinations(scheme, entry.src_line, entry.dsts)
        except ValueError as exc:
            self._fail(
                "dst_fit",
                f"destination array of source 0x{entry.src_line:x} does not "
                f"encode: {exc}",
                src_line=entry.src_line,
                dsts=[list(pair) for pair in entry.dsts],
            )
            return
        if payload.bit_length() > scheme.payload_bits:
            self._fail(
                "payload_budget",
                f"payload needs {payload.bit_length()} bits > declared "
                f"{scheme.payload_bits}-bit budget (source "
                f"0x{entry.src_line:x}, mode {mode})",
                src_line=entry.src_line,
                mode=mode,
            )
        spec = table.scheme.modes[mode]
        used_bits = spec.slot_bits * len(entry.dsts)
        mode_field = scheme.entry_dst_field_bits - scheme.payload_bits
        if mode_field + used_bits > scheme.entry_dst_field_bits:
            self._fail(
                "entry_bit_budget",
                f"mode field ({mode_field}b) + {len(entry.dsts)} slots of "
                f"{spec.slot_bits}b = {mode_field + used_bits}b exceed the "
                f"declared {scheme.entry_dst_field_bits}-bit entry field",
                src_line=entry.src_line,
                mode=mode,
            )
        decoded = decode_destinations(
            scheme, entry.src_line, mode, payload, len(entry.dsts)
        )
        stored = [(dst, conf) for dst, conf in entry.dsts]
        if decoded != stored:
            self._fail(
                "compression_roundtrip",
                f"encode/decode round trip diverges for source "
                f"0x{entry.src_line:x}: stored {stored} != decoded {decoded} "
                f"(mode {mode})",
                src_line=entry.src_line,
                mode=mode,
                stored=stored,
                decoded=decoded,
            )

    # -- history-buffer invariants ------------------------------------------

    def check_history(self, history: Any) -> None:
        """Capacity and timestamp monotonicity after a push."""
        self.checks += 1
        if len(history) > history.size:
            self._fail(
                "history_capacity",
                f"history holds {len(history)} entries > capacity "
                f"{history.size}",
                length=len(history),
            )
        entries = history._entries
        if len(entries) >= 2 and entries[-1].timestamp < entries[-2].timestamp:
            self._fail(
                "history_monotonic",
                f"history timestamp went backwards: "
                f"{entries[-2].timestamp} -> {entries[-1].timestamp} "
                f"(head 0x{entries[-1].line_addr:x})",
                previous=entries[-2].timestamp,
                current=entries[-1].timestamp,
            )

    # -- simulator invariants -----------------------------------------------

    def check_fill(self, sim: Any, line_addr: int) -> None:
        """MSHR/L1I/PQ consistency after a fill completes."""
        self.checks += 1
        if not sim.l1i.contains(line_addr):
            self._fail(
                "fill_resident",
                f"filled line 0x{line_addr:x} is not resident in the L1I",
                line_addr=line_addr,
            )
        if sim.mshr.lookup(line_addr) is not None:
            self._fail(
                "mshr_l1i_exclusive",
                f"line 0x{line_addr:x} is both resident and in the MSHR",
                line_addr=line_addr,
            )
        if len(sim.mshr) > sim.mshr.capacity:
            self._fail(
                "mshr_capacity",
                f"MSHR holds {len(sim.mshr)} entries > capacity "
                f"{sim.mshr.capacity}",
            )
        if len(sim.pq) > sim.pq.capacity:
            self._fail(
                "pq_capacity",
                f"prefetch queue holds {len(sim.pq)} entries > capacity "
                f"{sim.pq.capacity}",
            )

    def final_check(self, sim: Any) -> None:
        """Whole-model sweep at the end of a run."""
        self.checks += 1
        for line_addr in list(sim.mshr._entries):
            if sim.l1i.contains(line_addr):
                self._fail(
                    "mshr_l1i_exclusive",
                    f"line 0x{line_addr:x} is both resident and in the MSHR "
                    f"at end of run",
                    line_addr=line_addr,
                )
        stats = sim.stats
        if stats.l1i_demand_hits + stats.l1i_demand_misses != stats.l1i_demand_accesses:
            self._fail(
                "demand_counter_sum",
                f"demand hits ({stats.l1i_demand_hits}) + misses "
                f"({stats.l1i_demand_misses}) != accesses "
                f"({stats.l1i_demand_accesses})",
            )
        table = getattr(sim.prefetcher, "table", None)
        if table is not None:
            for table_set in table._sets:
                if len(table_set) > table.ways:
                    self._fail(
                        "table_associativity",
                        f"set holds {len(table_set)} entries > {table.ways} "
                        f"ways",
                    )
                for entry in table_set.values():
                    self.check_entry(table, entry)
        history = getattr(sim.prefetcher, "history", None)
        if history is not None:
            timestamps = [entry.timestamp for entry in history]
            if any(b < a for a, b in zip(timestamps, timestamps[1:])):
                self._fail(
                    "history_monotonic",
                    f"history timestamps are not monotonic at end of run: "
                    f"{timestamps}",
                )
