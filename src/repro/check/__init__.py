"""Hardening and self-checking subsystem (``repro.check``).

Three layers:

* **Ingestion hardening** — the structured error taxonomy in
  :mod:`repro.check.errors` (``TraceError`` kinds raised by
  :mod:`repro.workloads.trace`, ``ConfigError`` raised by
  ``SimConfig.validate()`` / ``EntanglingConfig.validate()``).
* **Runtime invariant sanitizer** — :mod:`repro.check.sanitize`, wired
  into a run via ``REPRO_SANITIZE=1`` (fatal) / ``REPRO_SANITIZE=report``
  (collect) or ``repro run --check``.
* **Crash-safe artifact IO** — :mod:`repro.check.artifacts`, the atomic
  write-replace helper and guarded JSON loader used by every exporter.

Zero-cost contract: this ``__init__`` imports only the light ``errors``
and ``artifacts`` modules.  The sanitizer machinery loads lazily —
:func:`sanitizer_from_env` imports :mod:`repro.check.sanitize` only when
``REPRO_SANITIZE`` is actually set, so an unsanitized run keeps the
module out of ``sys.modules`` entirely (subprocess-pinned in
``tests/test_check_sanitizer.py``).
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.check.artifacts import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    load_json_guarded,
)
from repro.check.errors import (
    ArtifactError,
    CheckError,
    ConfigError,
    InvariantViolation,
    TraceCRCError,
    TraceError,
    TraceHeaderError,
    TraceMagicError,
    TracePayloadError,
    TraceRecordError,
    TraceTruncatedError,
    TraceVersionError,
)

__all__ = [
    "ArtifactError",
    "CheckError",
    "ConfigError",
    "InvariantViolation",
    "TraceCRCError",
    "TraceError",
    "TraceHeaderError",
    "TraceMagicError",
    "TracePayloadError",
    "TraceRecordError",
    "TraceTruncatedError",
    "TraceVersionError",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "load_json_guarded",
    "sanitize_mode_from_env",
    "sanitizer_from_env",
    "Sanitizer",
    "SanitizerReport",
]

#: Lazily resolved exports (PEP 562) so importing :mod:`repro.check` for
#: the error taxonomy or atomic IO never pulls in the sanitizer (and its
#: core-model imports).
_LAZY = {
    "Sanitizer": "repro.check.sanitize",
    "SanitizerReport": "repro.check.sanitize",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def sanitize_mode_from_env(value: Optional[str] = None) -> Optional[str]:
    """Resolve ``REPRO_SANITIZE`` to ``None`` / ``"fatal"`` / ``"report"``.

    Unset, empty, ``0``, ``off``, ``false``, ``no`` disable the sanitizer;
    ``report``, ``collect``, ``warn`` select non-fatal collection; any
    other value (``1``, ``on``, ...) selects fatal mode.
    """
    if value is None:
        value = os.environ.get("REPRO_SANITIZE", "")
    value = value.strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return None
    if value in ("report", "collect", "warn"):
        return "report"
    return "fatal"


def sanitizer_from_env() -> Optional[Any]:
    """Build a :class:`Sanitizer` if ``REPRO_SANITIZE`` requests one.

    Returns ``None`` — without importing the sanitizer module — when the
    environment does not opt in, preserving the zero-cost contract.
    """
    mode = sanitize_mode_from_env()
    if mode is None:
        return None
    from repro.check.sanitize import Sanitizer

    return Sanitizer(fatal=(mode == "fatal"))
