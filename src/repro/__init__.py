"""repro — reproduction of *A Cost-Effective Entangling Prefetcher for
Instructions* (Ros & Jimborean, ISCA 2021).

Quick start::

    from repro import EntanglingPrefetcher, SimConfig, simulate
    from repro.workloads import cvp_suite, make_workload

    trace = make_workload(cvp_suite(per_category=1)[0])
    result = simulate(trace, EntanglingPrefetcher())
    print(result.stats.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    EntanglingConfig,
    EntanglingPrefetcher,
    make_ablation,
    make_entangling,
    make_epi,
)
from repro.prefetchers import (
    InstructionPrefetcher,
    NullPrefetcher,
    available_prefetchers,
    make_prefetcher,
)
from repro.sim import SimConfig, SimResult, Simulator, simulate
from repro.workloads import Trace, cvp_suite, make_workload

__version__ = "1.0.0"

__all__ = [
    "EntanglingConfig",
    "EntanglingPrefetcher",
    "make_ablation",
    "make_entangling",
    "make_epi",
    "InstructionPrefetcher",
    "NullPrefetcher",
    "available_prefetchers",
    "make_prefetcher",
    "SimConfig",
    "SimResult",
    "Simulator",
    "simulate",
    "Trace",
    "cvp_suite",
    "make_workload",
    "__version__",
]
