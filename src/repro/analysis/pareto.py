"""Pareto-dominance primitives for multi-objective design-space search.

The tuner (:mod:`repro.analysis.tune`) scores every candidate
configuration on several objectives at once — performance, storage
budget, energy — and no scalar weighting of those axes is defensible a
priori: the paper itself presents its headline result as a
*performance-vs-storage* frontier (Figure 6), not a single number.
These helpers implement the standard machinery over plain objective
vectors:

* every objective is **minimized** (callers negate maximize-objectives);
* :func:`dominates` is strict Pareto dominance (no worse everywhere,
  strictly better somewhere);
* :func:`pareto_front_indices` extracts the nondominated set;
* :func:`nondominated_sort` and :func:`crowding_distances` are the
  NSGA-II selection ingredients the genetic strategy uses.

Everything is deterministic and order-stable: equal inputs produce equal
outputs with ties broken by index, which the tuner's bit-reproducibility
guarantee leans on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Vector = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (all objectives minimized).

    ``a`` dominates ``b`` iff it is no worse in every objective and
    strictly better in at least one.  Equal vectors dominate neither way,
    so duplicated design points coexist on a front instead of silently
    evicting each other.

    Raises:
        ValueError: the vectors have different lengths (comparing scores
            from different objective sets is always a bug).
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}"
        )
    better = False
    for ai, bi in zip(a, b):
        if ai > bi:
            return False
        if ai < bi:
            better = True
    return better


def pareto_front_indices(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the nondominated points, in input order.

    O(n^2) pairwise sweep — fronts here are tens of configurations, not
    millions, and the simple form is easy to audit.
    """
    front: List[int] = []
    for i, candidate in enumerate(points):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(points)
            if j != i
        ):
            front.append(i)
    return front


def nondominated_sort(points: Sequence[Sequence[float]]) -> List[List[int]]:
    """Partition point indices into successive nondominated fronts.

    Front 0 is the Pareto front of the whole set; front ``k`` is the
    Pareto front after removing fronts ``0..k-1`` (the classic NSGA-II
    ranking).  Every index appears in exactly one front; indices within a
    front keep input order.
    """
    n = len(points)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        nxt: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        nxt.sort()
        current = nxt
    return fronts


def crowding_distances(
    points: Sequence[Sequence[float]], indices: Sequence[int]
) -> Dict[int, float]:
    """NSGA-II crowding distance for one front's ``indices``.

    Boundary points on every objective get ``inf`` (always kept);
    interior points get the normalized neighbour-gap sum.  Larger is
    less crowded, i.e. more valuable for diversity.
    """
    distances: Dict[int, float] = {i: 0.0 for i in indices}
    if not indices:
        return distances
    n_objectives = len(points[indices[0]])
    for m in range(n_objectives):
        # Ties broken by index so the ordering (and therefore the
        # distances) are deterministic for equal objective values.
        ordered = sorted(indices, key=lambda i: (points[i][m], i))
        distances[ordered[0]] = float("inf")
        distances[ordered[-1]] = float("inf")
        span = points[ordered[-1]][m] - points[ordered[0]][m]
        if span <= 0:
            continue
        for pos in range(1, len(ordered) - 1):
            idx = ordered[pos]
            if distances[idx] == float("inf"):
                continue
            gap = points[ordered[pos + 1]][m] - points[ordered[pos - 1]][m]
            distances[idx] += gap / span
    return distances
