"""CSV export of evaluation results and figure data.

Every figure driver in :mod:`repro.analysis.figures` returns plain data;
these helpers serialize that data so external plotting tools can redraw
the paper's figures from this reproduction's numbers.
"""

from __future__ import annotations

import csv
from typing import List, Mapping, Sequence, TextIO, Union

from repro.analysis.experiments import EvaluationResult

PathOrFile = Union[str, TextIO]


def _with_writer(path_or_file: PathOrFile, emit) -> None:
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", newline="") as fh:
            emit(csv.writer(fh))
    else:
        emit(csv.writer(path_or_file))


def export_evaluation_csv(
    evaluation: EvaluationResult, path_or_file: PathOrFile
) -> None:
    """One row per (config, workload) with all headline metrics."""

    def emit(writer) -> None:
        writer.writerow(
            [
                "config", "workload", "category", "ipc", "normalized_ipc",
                "l1i_mpki", "miss_ratio", "coverage", "accuracy",
                "prefetches_sent", "useful", "late", "wrong",
                "wall_seconds", "instrs_per_sec",
            ]
        )
        for config in evaluation.configs():
            normalized = evaluation.normalized_ipc(config)
            cov = evaluation.coverage(config)
            for workload in sorted(evaluation.runs[config]):
                stats = evaluation.stats(config, workload)
                writer.writerow(
                    [
                        config,
                        workload,
                        evaluation.categories.get(workload, "unknown"),
                        f"{stats.ipc:.6f}",
                        f"{normalized[workload]:.6f}",
                        f"{stats.l1i_mpki:.4f}",
                        f"{stats.l1i_miss_ratio:.6f}",
                        f"{cov[workload]:.6f}",
                        f"{stats.accuracy:.6f}",
                        stats.prefetches_sent,
                        stats.useful_prefetches,
                        stats.late_prefetches,
                        stats.wrong_prefetches,
                        f"{stats.wall_seconds:.4f}",
                        f"{stats.instrs_per_second:.1f}",
                    ]
                )

    _with_writer(path_or_file, emit)


def export_curves_csv(
    curves: Mapping[str, Sequence[float]], path_or_file: PathOrFile
) -> None:
    """Figure 7-10 style sorted series: one column per configuration."""
    names = list(curves)
    length = max((len(v) for v in curves.values()), default=0)

    def emit(writer) -> None:
        writer.writerow(["rank"] + names)
        for rank in range(length):
            row: List[object] = [rank]
            for name in names:
                series = curves[name]
                row.append(f"{series[rank]:.6f}" if rank < len(series) else "")
            writer.writerow(row)

    _with_writer(path_or_file, emit)


def export_series_csv(
    series: Mapping[object, float],
    path_or_file: PathOrFile,
    key_name: str = "key",
    value_name: str = "value",
) -> None:
    """A simple key->value mapping (e.g. Figure 1 distances, Figure 13
    category means)."""

    def emit(writer) -> None:
        writer.writerow([key_name, value_name])
        for key in sorted(series, key=str):
            writer.writerow([key, f"{series[key]:.6f}"])

    _with_writer(path_or_file, emit)
