"""CSV / metrics export of evaluation results and figure data.

Every figure driver in :mod:`repro.analysis.figures` returns plain data;
these helpers serialize that data so external plotting tools can redraw
the paper's figures from this reproduction's numbers.

Per-run counter values are read through the unified metrics registry
(:mod:`repro.obs.registry`) — one naming scheme shared with the JSON /
CSV / Prometheus exporters below — instead of reaching into each counter
dataclass separately.
"""

from __future__ import annotations

import csv
import io
from typing import List, Mapping, Optional, Sequence, TextIO, Union

from repro.analysis.experiments import EvaluationResult
from repro.check.artifacts import atomic_write_text
from repro.obs.registry import MetricsRegistry, registry_for_run

PathOrFile = Union[str, TextIO]


def _with_writer(path_or_file: PathOrFile, emit) -> None:
    if isinstance(path_or_file, str):
        # Render in memory, then atomically replace the target so a crash
        # mid-export can never leave a half-written CSV behind.  The
        # buffer uses newline="" like the direct-file path did, so the
        # csv module's \r\n row endings survive byte-for-byte.
        buffer = io.StringIO(newline="")
        emit(csv.writer(buffer))
        atomic_write_text(path_or_file, buffer.getvalue())
    else:
        emit(csv.writer(path_or_file))


def _write_text(path_or_file: PathOrFile, text: str) -> None:
    if isinstance(path_or_file, str):
        atomic_write_text(path_or_file, text)
    else:
        path_or_file.write(text)


def evaluation_metrics_registry(
    evaluation: EvaluationResult,
    config: str,
    workload: str,
    baseline: str = "no",
) -> MetricsRegistry:
    """The unified registry for one evaluation run.

    Simulator (and any prefetcher-internal) metrics from the run, plus
    the evaluation-level derived gauges (normalized IPC and coverage
    against ``baseline``), labelled with the run's identity.
    """
    result = evaluation.runs[config][workload]
    registry = registry_for_run(result)
    registry.register(
        "repro_eval_normalized_ipc",
        evaluation.normalized_ipc(config, baseline).get(workload, 0.0),
        kind="gauge",
        help=f"IPC normalized to the {baseline!r} baseline",
    )
    registry.register(
        "repro_eval_coverage",
        evaluation.coverage(config, baseline).get(workload, 0.0),
        kind="gauge",
        help="Fraction of baseline L1I misses eliminated",
    )
    registry.relabel({"config": config, "workload": workload})
    return registry


#: (CSV column, registry metric name) for the per-run evaluation export.
_EVAL_CSV_COLUMNS = (
    ("ipc", "repro_sim_ipc"),
    ("normalized_ipc", "repro_eval_normalized_ipc"),
    ("l1i_mpki", "repro_sim_l1i_mpki"),
    ("miss_ratio", "repro_sim_l1i_miss_ratio"),
    ("coverage", "repro_eval_coverage"),
    ("accuracy", "repro_sim_accuracy"),
    ("prefetches_sent", "repro_sim_prefetches_sent"),
    ("useful", "repro_sim_useful_prefetches"),
    ("late", "repro_sim_late_prefetches"),
    ("wrong", "repro_sim_wrong_prefetches"),
    ("wall_seconds", "repro_sim_wall_seconds"),
    ("instrs_per_sec", "repro_sim_instrs_per_second"),
)

_EVAL_CSV_FORMATS = {
    "ipc": "{:.6f}", "normalized_ipc": "{:.6f}", "l1i_mpki": "{:.4f}",
    "miss_ratio": "{:.6f}", "coverage": "{:.6f}", "accuracy": "{:.6f}",
    "wall_seconds": "{:.4f}", "instrs_per_sec": "{:.1f}",
}


def export_evaluation_csv(
    evaluation: EvaluationResult, path_or_file: PathOrFile
) -> None:
    """One row per (config, workload) with all headline metrics."""

    def emit(writer) -> None:
        writer.writerow(
            ["config", "workload", "category"]
            + [column for column, _metric in _EVAL_CSV_COLUMNS]
        )
        for config in evaluation.configs():
            for workload in sorted(evaluation.runs[config]):
                labels = {"config": config, "workload": workload}
                registry = evaluation_metrics_registry(
                    evaluation, config, workload
                )
                row: List[object] = [
                    config,
                    workload,
                    evaluation.categories.get(workload, "unknown"),
                ]
                for column, metric in _EVAL_CSV_COLUMNS:
                    value = registry.value(metric, labels)
                    template = _EVAL_CSV_FORMATS.get(column)
                    row.append(template.format(value) if template else value)
                writer.writerow(row)

    _with_writer(path_or_file, emit)


def export_metrics_json(
    registry: MetricsRegistry, path_or_file: PathOrFile, indent: Optional[int] = 2
) -> None:
    """Write a metrics registry as JSON (``{"metrics": [...]}``)."""
    _write_text(path_or_file, registry.to_json(indent=indent) + "\n")


def export_metrics_csv(registry: MetricsRegistry, path_or_file: PathOrFile) -> None:
    """Write a metrics registry as ``name,labels,kind,value`` CSV."""
    _write_text(path_or_file, registry.to_csv())


def export_metrics_prometheus(
    registry: MetricsRegistry, path_or_file: PathOrFile
) -> None:
    """Write a metrics registry in Prometheus text exposition format."""
    _write_text(path_or_file, registry.to_prometheus_text())


def export_curves_csv(
    curves: Mapping[str, Sequence[float]], path_or_file: PathOrFile
) -> None:
    """Figure 7-10 style sorted series: one column per configuration."""
    names = list(curves)
    length = max((len(v) for v in curves.values()), default=0)

    def emit(writer) -> None:
        writer.writerow(["rank"] + names)
        for rank in range(length):
            row: List[object] = [rank]
            for name in names:
                series = curves[name]
                row.append(f"{series[rank]:.6f}" if rank < len(series) else "")
            writer.writerow(row)

    _with_writer(path_or_file, emit)


def export_pareto_csv(result, path_or_file: PathOrFile) -> None:
    """One row per Pareto-front point of a :class:`~repro.analysis.tune.TuneResult`.

    Columns are the union of genome parameters (sorted) plus the
    objective scores, so external tools can redraw the searched Figure 6
    frontier without re-running the search.  Unset parameters and
    held-out scores render as empty cells; tuple-valued parameters
    (mode whitelists) are joined with ``|`` so the CSV stays
    single-delimiter.
    """
    params = sorted({name for point in result.front for name in point.genome})

    def render(value) -> object:
        if value is None:
            return ""
        if isinstance(value, (list, tuple)):
            return "|".join(str(v) for v in value)
        return value

    def emit(writer) -> None:
        writer.writerow(
            ["point"]
            + params
            + [
                "speedup",
                "test_speedup",
                "storage_bits",
                "storage_kb",
                "energy",
                "failures",
            ]
        )
        for point in result.front:
            writer.writerow(
                [point.name]
                + [render(point.genome.get(name)) for name in params]
                + [
                    f"{point.speedup:.6f}",
                    (
                        f"{point.test_speedup:.6f}"
                        if point.test_speedup is not None
                        else ""
                    ),
                    point.storage_bits,
                    f"{point.storage_kb:.2f}",
                    f"{point.energy:.6f}",
                    point.failures,
                ]
            )

    _with_writer(path_or_file, emit)


def export_series_csv(
    series: Mapping[object, float],
    path_or_file: PathOrFile,
    key_name: str = "key",
    value_name: str = "value",
) -> None:
    """A simple key->value mapping (e.g. Figure 1 distances, Figure 13
    category means)."""

    def emit(writer) -> None:
        writer.writerow([key_name, value_name])
        for key in sorted(series, key=str):
            writer.writerow([key, f"{series[key]:.6f}"])

    _with_writer(path_or_file, emit)
