"""Process-pool fan-out of suite evaluations.

Per-(configuration, workload) simulations are embarrassingly parallel:
traces are regenerated deterministically from hashable
:class:`~repro.workloads.generators.WorkloadSpec`\\ s, every worker gets a
fresh prefetcher, and the simulator touches no shared mutable state.  The
runner here fans one task per (config, workload) pair out to a
``ProcessPoolExecutor`` and reassembles the results in exactly the order
the serial path produces, so ``run_suite(..., jobs=N)`` is bit-identical
to ``jobs=1`` for every architectural counter.

Workers return *detached* results (stats without the live prefetcher
object — prefetcher state does not need to cross the process boundary);
consumers that require the live object (e.g. the Figure 12-15 internals
driver) use the serial path.

Traces and fetch units are memoized per process by the ``lru_cache``\\ d
helpers in :mod:`repro.analysis.experiments`, so a worker that receives
several configurations of the same workload generates its trace once.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    resolve_config,
    resolve_warmup,
    run_single,
)
from repro.analysis.runcache import RunCache, run_key
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult
from repro.workloads.generators import WorkloadSpec


class RunTask(NamedTuple):
    """One picklable unit of work: simulate ``spec`` under ``config_name``."""

    spec: WorkloadSpec
    config_name: str
    base_config: Optional[SimConfig]
    warmup_instructions: Optional[int]


def execute_task(task: RunTask) -> SimResult:
    """Worker entry point: run one task and return a detached result."""
    return run_single(
        task.spec, task.config_name, task.base_config, task.warmup_instructions
    ).detached()


def run_tasks_parallel(
    specs: Sequence[WorkloadSpec],
    config_names: Sequence[str],
    base_config: Optional[SimConfig] = None,
    warmup_instructions: Optional[int] = None,
    jobs: int = 2,
    cache: Optional[RunCache] = None,
) -> Dict[str, Dict[str, SimResult]]:
    """Evaluate ``config_names`` x ``specs`` with ``jobs`` worker processes.

    Returns the ``runs`` mapping of an
    :class:`~repro.analysis.experiments.EvaluationResult` — config name ->
    workload name -> result — populated in the same deterministic order as
    the serial path.  Pairs already in ``cache`` are served locally; only
    misses are dispatched, and their results are stored back.
    """
    base = base_config or SimConfig()
    ordered: List[Tuple[str, WorkloadSpec]] = [
        (name, spec) for name in config_names for spec in specs
    ]

    results: Dict[Tuple[str, str], SimResult] = {}
    pending: List[Tuple[str, WorkloadSpec, Optional[str]]] = []
    for name, spec in ordered:
        key: Optional[str] = None
        if cache is not None:
            _prefetcher, sim_config = resolve_config(name, base)
            key = run_key(
                spec, name, sim_config, resolve_warmup(spec, warmup_instructions)
            )
            hit = cache.get(key)
            if hit is not None:
                results[(name, spec.name)] = hit
                continue
        pending.append((name, spec, key))

    if pending:
        tasks = [
            RunTask(spec, name, base_config, warmup_instructions)
            for name, spec, _key in pending
        ]
        workers = max(1, min(jobs, len(tasks)))
        chunksize = max(1, len(tasks) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            fresh = list(pool.map(execute_task, tasks, chunksize=chunksize))
        for (name, spec, key), result in zip(pending, fresh):
            results[(name, spec.name)] = result
            if cache is not None and key is not None:
                cache.put(key, result)

    runs: Dict[str, Dict[str, SimResult]] = {}
    for name in config_names:
        runs[name] = {spec.name: results[(name, spec.name)] for spec in specs}
    return runs
