"""Fault-tolerant process-pool fan-out of suite evaluations.

Per-(configuration, workload) simulations are embarrassingly parallel:
traces are regenerated deterministically from hashable
:class:`~repro.workloads.generators.WorkloadSpec`\\ s, every worker gets a
fresh prefetcher, and the simulator touches no shared mutable state.  The
runner here fans one task per (config, workload) pair out to a
``ProcessPoolExecutor`` and reassembles the results in exactly the order
the serial path produces, so ``run_suite(..., jobs=N)`` is bit-identical
to ``jobs=1`` for every architectural counter.

At the paper's full evaluation scale (959 traces x ~15 configurations) a
single crashed or hung worker must not kill hours of simulation, so the
executor layer is fault tolerant:

* every task gets up to ``1 + retries`` attempts (``REPRO_TASK_RETRIES``)
  with capped exponential backoff between rounds
  (``REPRO_TASK_BACKOFF``);
* a per-task timeout (``REPRO_TASK_TIMEOUT`` seconds) bounds how long
  the runner waits on any one future; a round that saw timeouts replaces
  the pool, since a truly hung task poisons its worker slot forever;
* a ``BrokenProcessPool`` (worker killed by the OS, ``os._exit``, OOM)
  degrades gracefully to in-process serial execution of the remaining
  tasks instead of raising;
* tasks that fail every attempt are *quarantined* — reported in the
  :class:`FaultReport`, never fatal — so ``run_suite`` always returns a
  complete or explicitly partial result.

Workers return *detached* results (stats without the live prefetcher
object); consumers that require the live object (e.g. the Figure 12-15
internals driver) use the serial path.

For testing, the worker entry point carries a fault-injection hook
(``REPRO_FAULT_INJECT=mode:fraction[:scope]`` with modes ``crash`` /
``hang`` / ``corrupt`` / ``exit``); see :class:`FaultInjector`.
"""

from __future__ import annotations

import functools
import hashlib
import logging
import multiprocessing
import os
import queue as queue_module
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.checkpoint import CheckpointManifest
from repro.analysis.experiments import (
    resolve_config,
    resolve_warmup,
    run_single,
)
from repro.analysis.runcache import RunCache, run_key
from repro.analysis.store import (
    LeaseKeeper,
    await_result,
    coalesce_enabled,
)
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult
from repro.workloads.generators import WorkloadSpec

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


def _env_int(name: str, default: int, minimum: int = 0) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r} (e.g. {name}=2)"
        ) from None
    return max(minimum, value)


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be a number of seconds, got {raw!r} "
            f"(e.g. {name}=60)"
        ) from None
    return value if value > 0 else None


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient executor handles per-task failures.

    ``timeout`` bounds the *additional* wall-clock the runner waits for
    one task after the previous one resolved (futures are collected in
    submission order); ``None`` waits forever.  Timeouts only apply to
    pooled execution — an in-process task cannot be interrupted.
    """

    retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.1
    backoff_cap: float = 2.0

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before retry round ``attempt`` (>= 1)."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from ``REPRO_TASK_RETRIES`` / ``REPRO_TASK_TIMEOUT`` /
        ``REPRO_TASK_BACKOFF`` (defaults: 2 retries, no timeout, 0.1s)."""
        return cls(
            retries=_env_int("REPRO_TASK_RETRIES", 2),
            timeout=_env_float("REPRO_TASK_TIMEOUT", None),
            backoff_base=_env_float("REPRO_TASK_BACKOFF", 0.1) or 0.0,
        )


def resolve_policy(policy: Optional[RetryPolicy]) -> RetryPolicy:
    return policy if policy is not None else RetryPolicy.from_env()


# ---------------------------------------------------------------------------
# fault report
# ---------------------------------------------------------------------------


@dataclass
class TaskFailure:
    """One task that exhausted every attempt."""

    label: str
    attempts: int
    error: str


@dataclass
class FaultReport:
    """Telemetry of the resilient executor's error handling.

    ``quarantined`` lists tasks that failed every attempt; everything
    else counts recoverable events.  ``clean`` is True when no fault of
    any kind occurred.
    """

    attempts: int = 0          # task attempts executed (>= task count)
    retries: int = 0           # attempts beyond each task's first
    timeouts: int = 0
    task_errors: int = 0       # exceptions raised by task code
    invalid_results: int = 0   # results rejected by the validator
    pool_breaks: int = 0       # BrokenProcessPool events
    serial_fallback: bool = False
    quarantined: List[TaskFailure] = field(default_factory=list)
    # Advisory heartbeat telemetry (see repro.obs.heartbeat): tasks whose
    # worker went silent before the task timeout fired.  Not part of
    # ``clean`` — the retry/timeout machinery decides the task's fate;
    # these record that the early-warning tripped.
    heartbeat_stale: int = 0
    stale_tasks: List[str] = field(default_factory=list)
    # Crash post-mortems (see repro.obs.events.FlightRecorder): label ->
    # path of the flight-recorder artifact dumped when the task's attempt
    # crashed/timed out/was quarantined.  Only populated when telemetry
    # events are on; advisory, not part of ``clean``.
    flight_recordings: Dict[str, str] = field(default_factory=dict)
    # The shared run store hit ENOSPC/EIO and degraded to read-only
    # during this evaluation (results stand, nothing was persisted).
    # Advisory, not part of ``clean`` — that is the degradation contract.
    store_degraded: bool = False

    @property
    def clean(self) -> bool:
        return (
            not self.quarantined
            and self.retries == 0
            and self.timeouts == 0
            and self.task_errors == 0
            and self.invalid_results == 0
            and self.pool_breaks == 0
        )

    def merge(self, other: "FaultReport") -> None:
        self.attempts += other.attempts
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.task_errors += other.task_errors
        self.invalid_results += other.invalid_results
        self.pool_breaks += other.pool_breaks
        self.serial_fallback = self.serial_fallback or other.serial_fallback
        self.quarantined.extend(other.quarantined)
        self.heartbeat_stale += other.heartbeat_stale
        self.stale_tasks.extend(other.stale_tasks)
        self.flight_recordings.update(other.flight_recordings)
        self.store_degraded = self.store_degraded or other.store_degraded

    def summary_line(self) -> str:
        parts = [
            f"{self.attempts} attempts",
            f"{self.retries} retries",
            f"{self.timeouts} timeouts",
            f"{self.task_errors} errors",
        ]
        if self.invalid_results:
            parts.append(f"{self.invalid_results} invalid results")
        if self.pool_breaks:
            parts.append(f"{self.pool_breaks} pool breaks")
        if self.serial_fallback:
            parts.append("serial fallback")
        if self.heartbeat_stale:
            parts.append(f"{self.heartbeat_stale} stale heartbeats")
        if self.store_degraded:
            parts.append("store degraded (read-only)")
        parts.append(f"{len(self.quarantined)} quarantined")
        return "faults: " + ", ".join(parts)


# ---------------------------------------------------------------------------
# fault injection (test hook)
# ---------------------------------------------------------------------------

#: Seconds an injected ``hang`` sleeps (``REPRO_FAULT_HANG_SECONDS``).
DEFAULT_HANG_SECONDS = 30.0

_FAULT_MODES = ("crash", "hang", "corrupt", "exit")


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic worker-fault injection, driven by the environment.

    ``REPRO_FAULT_INJECT=mode:fraction[:scope]`` selects a stable
    ``fraction`` of task labels (by hashing the label, so every process
    and every attempt agrees on the victim set) and makes them fail:

    * ``crash`` — raise ``RuntimeError`` inside the worker;
    * ``hang`` — sleep ``REPRO_FAULT_HANG_SECONDS`` (default 30);
    * ``corrupt`` — return a result with impossible counters (caught by
      the runner's validator and retried);
    * ``exit`` — ``os._exit(3)``, which breaks the whole process pool.

    ``scope`` is ``first`` (default: only the first attempt faults, so
    retries recover) or ``all`` (every attempt faults, so the task ends
    up quarantined).  ``hang`` and ``exit`` never fire in-process: the
    in-process path is the last-resort fallback and must not be able to
    kill or freeze the parent.
    """

    mode: str
    fraction: float
    scope: str = "first"
    hang_seconds: float = DEFAULT_HANG_SECONDS

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        raw = os.environ.get("REPRO_FAULT_INJECT")
        if raw is None or not raw.strip():
            return None
        parts = raw.strip().split(":")
        if len(parts) not in (2, 3) or parts[0] not in _FAULT_MODES:
            raise ValueError(
                f"REPRO_FAULT_INJECT must be mode:fraction[:scope] with "
                f"mode in {_FAULT_MODES}, got {raw!r}"
            )
        mode, fraction = parts[0], float(parts[1])
        scope = parts[2] if len(parts) == 3 else "first"
        if scope not in ("first", "all"):
            raise ValueError(
                f"REPRO_FAULT_INJECT scope must be 'first' or 'all', "
                f"got {scope!r}"
            )
        hang = _env_float("REPRO_FAULT_HANG_SECONDS", DEFAULT_HANG_SECONDS)
        return cls(
            mode=mode,
            fraction=fraction,
            scope=scope,
            hang_seconds=hang or DEFAULT_HANG_SECONDS,
        )

    def selects(self, label: str) -> bool:
        """Whether ``label`` is in the injected-fault victim set."""
        digest = hashlib.sha256(label.encode("utf-8")).hexdigest()
        return (int(digest, 16) % 10_000) < self.fraction * 10_000

    def _armed(self, label: str, attempt: int) -> bool:
        if not self.selects(label):
            return False
        return self.scope == "all" or attempt == 0

    def maybe_fault(self, label: str, attempt: int, in_process: bool) -> None:
        """Raise/hang/exit if this (label, attempt) is a victim."""
        if not self._armed(label, attempt):
            return
        if self.mode == "crash":
            raise RuntimeError(f"injected crash ({label}, attempt {attempt})")
        if self.mode == "hang" and not in_process:
            time.sleep(self.hang_seconds)
        elif self.mode == "exit" and not in_process:
            os._exit(3)

    def corrupts(self, label: str, attempt: int) -> bool:
        return self.mode == "corrupt" and self._armed(label, attempt)


# ---------------------------------------------------------------------------
# resilient executor
# ---------------------------------------------------------------------------


class ResilientMap(NamedTuple):
    """Outcome of :func:`map_resilient`: per-task results + telemetry."""

    #: one entry per task, None where the task was quarantined
    results: List[Optional[Any]]
    #: attempts each task consumed (0 where never attempted)
    attempts: List[int]
    report: FaultReport


class AttemptObserver:
    """Duck-typed protocol for :func:`map_resilient`'s ``observer``.

    The runner reports what it *observes*: attempt windows (submission
    to result collection in the pooled path — the worker's own span has
    the true duration), outcomes including timeouts and pool breaks,
    and retry backoff sleeps.  ``repro.obs.spans.SuiteSpanCollector``
    implements this to build the merged execution trace; a no-op default
    keeps every hook site a single ``is None`` check.
    """

    def attempt_started(self, label: str, attempt: int) -> None: ...

    def attempt_finished(
        self, label: str, attempt: int, ok: bool, error: Optional[str] = None
    ) -> None: ...

    def backoff(
        self, attempt: int, started: float, ended: float, pending: int
    ) -> None: ...


def _observed_sleep(
    observer: Optional[AttemptObserver],
    attempt: int,
    seconds: float,
    pending: int,
) -> None:
    started = time.time()
    time.sleep(seconds)
    if observer is not None:
        observer.backoff(attempt, started, time.time(), pending)


def _run_serial(
    fn: Callable[..., Any],
    tasks: Sequence[Any],
    labels: Sequence[str],
    indices: Sequence[int],
    policy: RetryPolicy,
    validate: Optional[Callable[[Any], bool]],
    results: List[Optional[Any]],
    attempts_used: List[int],
    report: FaultReport,
    observer: Optional[AttemptObserver] = None,
) -> None:
    """In-process execution with retries (jobs=1 and broken-pool fallback)."""
    for idx in indices:
        error = "never attempted"
        for attempt in range(policy.retries + 1):
            if attempt:
                report.retries += 1
                _observed_sleep(observer, attempt, policy.backoff(attempt), 1)
            report.attempts += 1
            attempts_used[idx] += 1
            if observer is not None:
                observer.attempt_started(labels[idx], attempt)
            try:
                result = fn(tasks[idx], attempt, in_process=True)
            except Exception as exc:  # noqa: BLE001 — quarantine, never die
                report.task_errors += 1
                error = f"{type(exc).__name__}: {exc}"
                if observer is not None:
                    observer.attempt_finished(labels[idx], attempt, False, error)
                continue
            if validate is not None and not validate(result):
                report.invalid_results += 1
                error = "invalid result (failed validation)"
                if observer is not None:
                    observer.attempt_finished(labels[idx], attempt, False, error)
                continue
            if observer is not None:
                observer.attempt_finished(labels[idx], attempt, True)
            results[idx] = result
            break
        else:
            report.quarantined.append(
                TaskFailure(labels[idx], attempts_used[idx], error)
            )
            logger.warning(
                "quarantined %s after %d attempt(s): %s",
                labels[idx], attempts_used[idx], error,
            )


def map_resilient(
    fn: Callable[..., Any],
    tasks: Sequence[Any],
    labels: Sequence[str],
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
    validate: Optional[Callable[[Any], bool]] = None,
    observer: Optional[AttemptObserver] = None,
) -> ResilientMap:
    """Run ``fn(task, attempt, in_process=...)`` over ``tasks``, resiliently.

    ``jobs > 1`` fans out over a ``ProcessPoolExecutor`` (``fn`` and the
    tasks must be picklable); ``jobs <= 1`` runs in-process.  Failed
    tasks are retried up to ``policy.retries`` times with capped
    exponential backoff; hung tasks are timed out (and their poisoned
    pool replaced); a broken pool degrades to in-process execution of
    whatever is still missing.  Tasks failing every attempt come back as
    ``None`` entries and are listed in the report's ``quarantined``.

    ``observer`` (see :class:`AttemptObserver`) receives every attempt
    window, outcome, and backoff sleep — the span-tracing layer hooks in
    here so even attempts that died in a worker appear, error-tagged, in
    the merged trace.
    """
    active = resolve_policy(policy)
    report = FaultReport()
    results: List[Optional[Any]] = [None] * len(tasks)
    attempts_used = [0] * len(tasks)
    if not tasks:
        return ResilientMap(results, attempts_used, report)

    if jobs <= 1:
        _run_serial(
            fn, tasks, labels, range(len(tasks)), active, validate,
            results, attempts_used, report, observer,
        )
        return ResilientMap(results, attempts_used, report)

    pending: List[int] = list(range(len(tasks)))
    errors: Dict[int, str] = {}
    broken = False
    healthy = False
    pool: Optional[ProcessPoolExecutor] = None
    try:
        for attempt in range(active.retries + 1):
            if not pending:
                break
            if attempt:
                report.retries += len(pending)
                _observed_sleep(
                    observer, attempt, active.backoff(attempt), len(pending)
                )
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=max(1, min(jobs, len(pending)))
                )
            futures: Dict[int, Any] = {}
            try:
                for idx in pending:
                    futures[idx] = pool.submit(fn, tasks[idx], attempt)
                    report.attempts += 1
                    attempts_used[idx] += 1
                    if observer is not None:
                        observer.attempt_started(labels[idx], attempt)
            except BrokenProcessPool:
                broken = True
            failed: List[int] = []
            timed_out = False
            for idx in pending:
                future = futures.get(idx)
                if future is None:  # submission died with the pool
                    failed.append(idx)
                    errors[idx] = "process pool broke before submission"
                    continue
                try:
                    result = future.result(timeout=active.timeout)
                except FuturesTimeoutError:
                    report.timeouts += 1
                    timed_out = True
                    failed.append(idx)
                    errors[idx] = (
                        f"timed out after {active.timeout}s "
                        f"(attempt {attempt})"
                    )
                    future.cancel()
                except BrokenProcessPool:
                    broken = True
                    failed.append(idx)
                    errors[idx] = "process pool broke"
                except Exception as exc:  # noqa: BLE001 — worker raised
                    report.task_errors += 1
                    failed.append(idx)
                    errors[idx] = f"{type(exc).__name__}: {exc}"
                else:
                    if validate is not None and not validate(result):
                        report.invalid_results += 1
                        failed.append(idx)
                        errors[idx] = "invalid result (failed validation)"
                    else:
                        results[idx] = result
                ok = results[idx] is not None
                if ok:
                    errors.pop(idx, None)
                if observer is not None:
                    observer.attempt_finished(
                        labels[idx], attempt, ok,
                        None if ok else errors.get(idx),
                    )
            pending = failed
            if broken:
                report.pool_breaks += 1
                break
            if timed_out and pending:
                # A hung task keeps its worker slot busy indefinitely —
                # retries would queue behind it and time out too.  Replace
                # the pool; the abandoned workers exit on their own.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
        healthy = not broken
    finally:
        if pool is not None:
            # Synchronous teardown on the healthy path.  This function
            # may run inside a multiprocessing child, whose _bootstrap
            # calls util._exit_function() the moment run() returns —
            # *before* concurrent.futures' own exit hook.  That runs the
            # call queue's finalizer, killing its feeder thread; an
            # executor still shutting down asynchronously then loses its
            # worker exit sentinels and both sides deadlock in join().
            # Waiting here is cheap (all futures are already resolved)
            # and guarantees no executor teardown outlives this call.
            # A broken pool (or an exception unwinding through us) keeps
            # the old non-blocking abandonment.
            pool.shutdown(wait=healthy, cancel_futures=True)

    if pending and broken:
        logger.warning(
            "process pool broke; running %d remaining task(s) in-process",
            len(pending),
        )
        report.serial_fallback = True
        _run_serial(
            fn, tasks, labels, pending, active, validate,
            results, attempts_used, report, observer,
        )
    elif pending:
        for idx in pending:
            report.quarantined.append(
                TaskFailure(
                    labels[idx],
                    attempts_used[idx],
                    errors.get(idx, "unknown failure"),
                )
            )
            logger.warning(
                "quarantined %s after %d attempt(s): %s",
                labels[idx], attempts_used[idx], errors.get(idx, "?"),
            )
    return ResilientMap(results, attempts_used, report)


# ---------------------------------------------------------------------------
# suite runner
# ---------------------------------------------------------------------------


class RunTask(NamedTuple):
    """One picklable unit of work: simulate ``spec`` under ``config_name``."""

    spec: WorkloadSpec
    config_name: str
    base_config: Optional[SimConfig]
    warmup_instructions: Optional[int]


def task_label(task: RunTask) -> str:
    return f"{task.config_name}/{task.spec.name}"


def result_valid(result: Any) -> bool:
    """Cheap sanity screen for worker results (rejects corrupt payloads)."""
    if not isinstance(result, SimResult):
        return False
    stats = result.stats
    return (
        stats.instructions >= 0
        and stats.cycles >= 0
        and stats.wall_seconds >= 0.0
    )


def execute_task(task: RunTask) -> SimResult:
    """Worker entry point: run one task and return a detached result."""
    return run_single(
        task.spec, task.config_name, task.base_config, task.warmup_instructions
    ).detached()


def _attempt_body(
    task: RunTask, label: str, attempt: int, in_process: bool
) -> SimResult:
    injector = FaultInjector.from_env()
    if injector is not None:
        injector.maybe_fault(label, attempt, in_process)
    result = execute_task(task)
    if injector is not None and injector.corrupts(label, attempt):
        result.stats.instructions = -1
        result.stats.cycles = -1
    return result


def execute_task_attempt(
    task: RunTask,
    attempt: int,
    in_process: bool = False,
    record_spans: bool = False,
    progress: Optional[Any] = None,
    heartbeat_interval: Optional[float] = None,
    events: bool = False,
) -> SimResult:
    """Worker entry point: fault injection + optional spans/heartbeats.

    ``record_spans``, ``progress`` (a queue for
    :mod:`repro.obs.heartbeat` events) and ``events`` are bound by the
    parent through ``functools.partial``; all default off, and the
    observability modules are only imported when the corresponding
    feature is on, so an untraced worker runs the exact
    pre-observability path.  ``events`` installs a
    :class:`~repro.obs.events.WorkerEventRelay` as this worker's process
    bus for the attempt, so worker-side publishers (the sanitizer path)
    reach the parent's ledger over the same progress queue.
    """
    label = task_label(task)
    pulse = None
    relay_installed = False
    previous_bus: Any = None
    if progress is not None:
        from repro.obs.heartbeat import (
            DEFAULT_HEARTBEAT_INTERVAL,
            HeartbeatPulse,
            emit_event,
        )

        emit_event(progress, "started", label, attempt=attempt)
        pulse = HeartbeatPulse(
            progress, label, heartbeat_interval or DEFAULT_HEARTBEAT_INTERVAL
        )
        pulse.start()
        if events:
            from repro.obs.events import WorkerEventRelay, set_event_bus

            previous_bus = set_event_bus(
                WorkerEventRelay(progress, label, attempt)
            )
            relay_installed = True
    try:
        if record_spans:
            from repro.obs.spans import worker_span_scope

            with worker_span_scope() as recorder:
                with recorder.span(
                    "attempt", cat="worker", label=label, attempt=attempt
                ):
                    result = _attempt_body(task, label, attempt, in_process)
                result.spans = recorder.batch()
        else:
            result = _attempt_body(task, label, attempt, in_process)
    except BaseException:
        if progress is not None:
            emit_event(progress, "failed", label, attempt=attempt)
        raise
    finally:
        if relay_installed:
            set_event_bus(previous_bus)
        if pulse is not None:
            pulse.stop()
    if progress is not None:
        emit_event(progress, "finished", label, attempt=attempt)
    return result


class SuiteOutcome(NamedTuple):
    """Result of :func:`run_tasks_parallel`."""

    #: config name -> workload name -> result (quarantined pairs absent)
    runs: Dict[str, Dict[str, SimResult]]
    report: FaultReport


def run_tasks_parallel(
    specs: Sequence[WorkloadSpec],
    config_names: Sequence[str],
    base_config: Optional[SimConfig] = None,
    warmup_instructions: Optional[int] = None,
    jobs: int = 2,
    cache: Optional[RunCache] = None,
    checkpoint: Optional[CheckpointManifest] = None,
    policy: Optional[RetryPolicy] = None,
    span_collector: Optional[Any] = None,
    monitor: Optional[Any] = None,
    events_bus: Optional[Any] = None,
) -> SuiteOutcome:
    """Evaluate ``config_names`` x ``specs`` with ``jobs`` worker processes.

    Returns the ``runs`` mapping of an
    :class:`~repro.analysis.experiments.EvaluationResult` — config name ->
    workload name -> result — populated in the same deterministic order as
    the serial path, plus the executor's :class:`FaultReport`.  Pairs
    already in ``cache`` are served locally; only misses are dispatched,
    and their results are stored back.  Completed pairs are recorded in
    ``checkpoint`` (if given) so an interrupted sweep can be resumed; pairs
    that fail every attempt are quarantined (absent from ``runs``, listed
    in the report) rather than fatal.

    ``span_collector`` (a ``repro.obs.spans.SuiteSpanCollector``) turns on
    distributed tracing: workers record span batches that are merged,
    clock-normalized, after collection.  ``monitor`` (a
    ``repro.obs.heartbeat.HeartbeatMonitor``) turns on worker progress
    events + the live status line; its stale-task flags fold into the
    returned report's advisory ``heartbeat_stale`` / ``stale_tasks``.

    When the cache has a shared disk store
    (:class:`~repro.analysis.store.ShardedRunStore`), identical in-flight
    run keys are coalesced across *processes*: misses are lease-claimed
    before dispatch, keys another live evaluator already owns are
    followed (polled until published — counted as coalesced hits, never
    re-simulated), and a follower steals the lease and simulates locally
    only when the owner provably died.  ``REPRO_COALESCE=0`` disables
    this.
    """
    base = base_config or SimConfig()
    ordered: List[Tuple[str, WorkloadSpec]] = [
        (name, spec) for name in config_names for spec in specs
    ]

    # Attach the cache's telemetry publisher for the duration of this
    # evaluation (restored on exit: the cache may be process-global).
    publisher_attached = False
    previous_publisher: Optional[Any] = None
    if events_bus is not None and cache is not None:
        previous_publisher = cache.publisher
        cache.publisher = events_bus
        publisher_attached = True
    store: Optional[Any] = None
    followed: List[Tuple[str, WorkloadSpec, str]] = []
    held_leases: List[Any] = []
    keeper: Optional[LeaseKeeper] = None
    report = FaultReport()
    try:
        results: Dict[Tuple[str, str], SimResult] = {}
        pending: List[Tuple[str, WorkloadSpec, Optional[str]]] = []
        label_keys: Dict[str, str] = {}  # task label -> run-key provenance
        for name, spec in ordered:
            key: Optional[str] = None
            if (
                cache is not None
                or checkpoint is not None
                or events_bus is not None
            ):
                _prefetcher, sim_config = resolve_config(name, base)
                key = run_key(
                    spec, name, sim_config,
                    resolve_warmup(spec, warmup_instructions),
                )
                label_keys[f"{name}/{spec.name}"] = key
            if cache is not None and key is not None:
                lookup_started = time.time()
                hit = cache.get(key, label=f"{name}/{spec.name}")
                if span_collector is not None:
                    span_collector.cache_lookup(
                        f"{name}/{spec.name}", hit is not None,
                        lookup_started, time.time(),
                    )
                if hit is not None:
                    results[(name, spec.name)] = hit
                    if monitor is not None:
                        monitor.note_cache_hit(f"{name}/{spec.name}")
                    if checkpoint is not None:
                        checkpoint.note_hit(key)
                        checkpoint.mark_done(key, name, spec.name)
                    continue
            pending.append((name, spec, key))

        # -- stampede coalescing: claim run keys before dispatching ------
        # When the cache has a shared disk store, concurrent evaluators
        # (other run_suite/tune/sweep processes sharing one cache dir)
        # coalesce identical in-flight keys: whoever wins the O_EXCL
        # lease simulates; everyone else follows — polls the store for
        # the published entry, stealing the lease only if its owner dies.
        store = getattr(cache, "store", None) if cache is not None else None
        if store is not None and pending and coalesce_enabled():
            owned: List[Tuple[str, WorkloadSpec, Optional[str]]] = []
            for name, spec, key in pending:
                if key is None:
                    owned.append((name, spec, key))
                    continue
                label = f"{name}/{spec.name}"
                lease = store.claim(key)
                if lease is None:
                    followed.append((name, spec, key))
                    continue
                # Claim won — but the previous owner may have published
                # between our cache miss and this claim; one quiet
                # re-probe closes that race without a duplicate run.
                hit = cache.wait_probe(key, label=label)
                if hit is not None:
                    store.release(lease)
                    results[(name, spec.name)] = hit
                    if monitor is not None:
                        monitor.note_cache_hit(label)
                    if checkpoint is not None:
                        checkpoint.note_hit(key)
                        checkpoint.mark_done(key, name, spec.name)
                    continue
                held_leases.append(lease)
                owned.append((name, spec, key))
            pending = owned
            if held_leases:
                keeper = LeaseKeeper(store, held_leases)
                keeper.start()

        if pending:
            tasks = [
                RunTask(spec, name, base_config, warmup_instructions)
                for name, spec, _key in pending
            ]
            labels = [task_label(task) for task in tasks]
            fn: Callable[..., Any] = execute_task_attempt
            manager = None
            progress_queue: Optional[Any] = None
            heartbeat_interval: Optional[float] = None
            events_observer: Optional[Any] = None
            if monitor is not None:
                from repro.obs.heartbeat import heartbeat_interval_from_env

                heartbeat_interval = heartbeat_interval_from_env()
                if jobs > 1:
                    # Plain mp.Queue objects cannot cross a
                    # ProcessPoolExecutor.submit boundary; manager proxies
                    # can.
                    manager = multiprocessing.Manager()
                    progress_queue = manager.Queue()
                else:
                    progress_queue = queue_module.Queue()
                monitor.attach_queue(progress_queue)
                monitor.start()
            observer: Optional[Any] = span_collector
            if events_bus is not None:
                from repro.obs.events import (
                    EventObserver,
                    compose_observers,
                    progress_event_sink,
                )

                if monitor is not None:
                    monitor.sink = progress_event_sink(events_bus, label_keys)
                events_observer = EventObserver(
                    events_bus,
                    flight_dir=events_bus.flight_dir,
                    label_keys=label_keys,
                )
                observer = compose_observers(span_collector, events_observer)
            if span_collector is not None or progress_queue is not None:
                fn = functools.partial(
                    execute_task_attempt,
                    record_spans=span_collector is not None,
                    progress=progress_queue,
                    heartbeat_interval=heartbeat_interval,
                    events=events_bus is not None,
                )
            try:
                outcome = map_resilient(
                    fn,
                    tasks,
                    labels,
                    jobs=jobs,
                    policy=policy,
                    validate=result_valid,
                    observer=observer,
                )
                report = outcome.report
                for (name, spec, key), result, n_attempts in zip(
                    pending, outcome.results, outcome.attempts
                ):
                    label = f"{name}/{spec.name}"
                    if result is None:
                        if monitor is not None:
                            monitor.note_quarantined(label)
                        continue  # quarantined — reported, not fatal
                    if span_collector is not None and result.spans is not None:
                        span_collector.add_batch(result.spans, label)
                        result.spans = None  # never cache or return batches
                    result.stats.attempts = max(1, n_attempts)
                    results[(name, spec.name)] = result
                    if cache is not None and key is not None:
                        cache.put(key, result, label=label)
                    if checkpoint is not None and key is not None:
                        checkpoint.mark_done(key, name, spec.name)
                if events_observer is not None:
                    # Final verdicts + crash post-mortems: one quarantined
                    # event per task that failed every attempt, and the
                    # flight-recorder artifacts linked from the report.
                    for failure in report.quarantined:
                        events_observer.quarantined(
                            failure.label, failure.attempts, failure.error
                        )
                    report.flight_recordings.update(
                        events_observer.flight_paths
                    )
            finally:
                if monitor is not None:
                    # Guarded: close() must survive a KeyboardInterrupt
                    # that already killed the Manager process (the queue
                    # proxy raises on every drain attempt).
                    try:
                        monitor.close()
                    except Exception:  # noqa: BLE001
                        pass
                    report.heartbeat_stale += len(monitor.stale_tasks)
                    report.stale_tasks.extend(monitor.stale_tasks)
                if manager is not None:
                    if sys.exc_info()[0] is not None:
                        # Abnormal exit (KeyboardInterrupt mid-suite):
                        # orphaned pool workers may still be blocked on
                        # call items that embed this Manager's queue
                        # proxy, and unpickling one after the Manager
                        # dies prints a FileNotFoundError traceback from
                        # the worker bootstrap.  Terminate them first;
                        # their results are lost either way.
                        manager_process = getattr(manager, "_process", None)
                        for child in multiprocessing.active_children():
                            if child is manager_process:
                                continue
                            try:
                                child.terminate()
                            except Exception:  # noqa: BLE001
                                pass
                    # Shut the Manager down *now*, cleanly: leaving it to
                    # the multiprocessing atexit machinery prints join
                    # tracebacks when the parent is interrupted.
                    try:
                        manager.shutdown()
                    except Exception:  # noqa: BLE001
                        pass

        # -- resolve followed keys: poll the owner, steal if it dies -----
        for name, spec, key in followed:
            label = f"{name}/{spec.name}"
            result: Optional[SimResult] = None
            while result is None:
                hit = await_result(
                    cache, store, key, label, bus=events_bus
                )
                if hit is not None:
                    result = hit
                    break
                # Owner gone without publishing (died, or its store
                # degraded): take over the claim and simulate locally.
                lease = store.steal(key)
                if lease is None:
                    continue  # lost the steal race; back to following
                hit = cache.wait_probe(key, label=label)
                if hit is not None:  # published in the steal window
                    store.release(lease)
                    result = hit
                    break
                cache.lease_steals += 1
                report.attempts += 1
                try:
                    sim = execute_task(
                        RunTask(spec, name, base_config, warmup_instructions)
                    )
                except Exception as exc:  # noqa: BLE001
                    report.task_errors += 1
                    report.quarantined.append(
                        TaskFailure(label, 1, f"{type(exc).__name__}: {exc}")
                    )
                    store.release(lease)
                    break
                sim.stats.attempts = 1
                cache.put(key, sim, label=label)
                store.release(lease)
                result = sim
            if result is not None:
                results[(name, spec.name)] = result
                if checkpoint is not None:
                    checkpoint.mark_done(key, name, spec.name)
    finally:
        if keeper is not None:
            keeper.stop()
        if store is not None:
            for lease in held_leases:
                store.release(lease)
            if store.read_only:
                report.store_degraded = True
        if publisher_attached:
            cache.publisher = previous_publisher

    runs: Dict[str, Dict[str, SimResult]] = {}
    for name in config_names:
        runs[name] = {
            spec.name: results[(name, spec.name)]
            for spec in specs
            if (name, spec.name) in results
        }
    return SuiteOutcome(runs, report)
