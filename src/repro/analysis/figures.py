"""One driver per table/figure in the paper's evaluation section.

Every ``fig*``/``tab*`` function runs the required simulations and returns
plain data (rows, dicts) mirroring what the paper plots; ``render_*``
helpers turn them into the text tables printed by the benchmarks and
recorded in EXPERIMENTS.md.  All drivers accept a workload suite so the
benchmarks can run scaled-down suites while the full evaluation uses
``cvp_suite(per_category=6)``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    EvaluationResult,
    _cached_units,
    _cached_workload,
    run_cached,
    run_suite,
)
from repro.analysis.metrics import (
    category_means,
    geometric_mean,
    percentile_curve,
    robust_geometric_mean,
)
from repro.analysis.oracle import OracleResult, run_oracle
from repro.analysis.storage import prefetcher_storage_kb
from repro.analysis.reporting import format_table
from repro.core.compression import mode_table
from repro.core.variants import ABLATION_NAMES, make_ablation
from repro.energy import EnergyModel
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate
from repro.workloads.generators import WorkloadSpec

#: The prefetcher field of Figure 6, ordered by storage budget.
FIG6_CONFIGS = (
    "next_line",
    "sn4l",
    "mana_2k",
    "mana_4k",
    "entangling_2k",
    "l1i_64kb",
    "entangling_4k",
    "rdip",
    "l1i_96kb",
    "mana_8k",
    "entangling_8k",
    "fnl_mma",
    "djolt",
    "epi",
    "ideal",
)

#: The sub-64KB field used by the per-workload curve figures (7-10).
CURVE_CONFIGS = (
    "next_line",
    "sn4l",
    "mana_2k",
    "mana_4k",
    "entangling_2k",
    "entangling_4k",
    "rdip",
    "ideal",
)

#: The configurations of the energy table (Table IV).
TAB4_CONFIGS = (
    "next_line",
    "sn4l",
    "mana_2k",
    "mana_4k",
    "entangling_2k",
    "entangling_4k",
    "rdip",
)


# -- Figures 1 and 2 -----------------------------------------------------------


def fig1_fig2_oracle(
    specs: Sequence[WorkloadSpec],
    config: Optional[SimConfig] = None,
    max_distance: int = 10,
) -> List[OracleResult]:
    """The look-ahead oracle study over a suite (Figures 1 and 2)."""
    return [
        run_oracle(_cached_workload(spec), config=config, max_distance=max_distance)
        for spec in specs
    ]


def render_fig1(results: Sequence[OracleResult]) -> str:
    headers = ["workload"] + [f"d={d}" for d in range(1, 11)]
    rows = [
        [r.workload] + [r.timely_fraction.get(d, 0.0) for d in range(1, 11)]
        for r in results
    ]
    return "Fig 1 — fraction of timely prefetches vs look-ahead distance\n" + (
        format_table(headers, rows, float_format="{:.3f}")
    )


def render_fig2(results: Sequence[OracleResult]) -> str:
    headers = ["workload"] + [f"d={d}" for d in range(1, 11)]
    rows = [
        [r.workload] + [r.accuracy.get(d, 0.0) for d in range(1, 11)]
        for r in results
    ]
    return "Fig 2 — prefetch accuracy vs look-ahead distance\n" + (
        format_table(headers, rows, float_format="{:.3f}")
    )


# -- Tables I / II ---------------------------------------------------------------


def tab1_tab2_modes() -> Dict[str, List[Tuple[int, int, int]]]:
    """Compression mode tables for virtual (Table I) and physical (Table II)."""
    return {"virtual": mode_table("virtual"), "physical": mode_table("physical")}


def render_tab1_tab2() -> str:
    modes = tab1_tab2_modes()
    parts = []
    for kind, rows in modes.items():
        headers = ["mode", "destinations", "addr bits each"]
        title = "Table I (virtual)" if kind == "virtual" else "Table II (physical)"
        parts.append(title + "\n" + format_table(headers, rows))
    return "\n\n".join(parts)


# -- Figure 6 ----------------------------------------------------------------------


@dataclass
class Fig6Row:
    config: str
    storage_kb: float
    geomean_speedup: float


def fig6_ipc_vs_storage(
    specs: Sequence[WorkloadSpec],
    configs: Sequence[str] = FIG6_CONFIGS,
    jobs: Optional[int] = None,
) -> Tuple[List[Fig6Row], EvaluationResult]:
    """Geomean normalized IPC and storage per configuration (Figure 6)."""
    evaluation = run_suite(specs, list(configs), jobs=jobs)
    rows = [
        Fig6Row(
            config=name,
            storage_kb=prefetcher_storage_kb(name) if name != "ideal" else 0.0,
            geomean_speedup=evaluation.geomean_speedup(name),
        )
        for name in configs
    ]
    return rows, evaluation


def render_fig6(rows: Sequence[Fig6Row]) -> str:
    headers = ["config", "storage KB", "geomean IPC (norm.)"]
    table_rows = [[r.config, r.storage_kb, r.geomean_speedup] for r in rows]
    return "Fig 6 — IPC vs memory requirements\n" + format_table(
        headers, table_rows, float_format="{:.3f}"
    )


# -- Figures 7-10 (per-workload curves) ----------------------------------------------


def per_workload_curves(
    evaluation: EvaluationResult,
    metric: str,
    configs: Sequence[str] = CURVE_CONFIGS,
) -> Dict[str, List[float]]:
    """Sorted per-workload series per config for Figures 7 (ipc),
    8 (miss_ratio), 9 (coverage), 10 (accuracy)."""
    curves: Dict[str, List[float]] = {}
    for name in configs:
        if name not in evaluation.runs:
            continue
        if metric == "ipc":
            values = list(evaluation.normalized_ipc(name).values())
        elif metric == "miss_ratio":
            values = list(evaluation.miss_ratio(name).values())
        elif metric == "coverage":
            values = list(evaluation.coverage(name).values())
        elif metric == "accuracy":
            values = list(evaluation.accuracy(name).values())
        else:
            raise ValueError(f"unknown curve metric {metric!r}")
        curves[name] = percentile_curve(values)
    return curves


def render_curves(title: str, curves: Dict[str, List[float]]) -> str:
    lines = [title]
    for name, series in curves.items():
        body = " ".join(f"{v:.3f}" for v in series)
        lines.append(f"  {name:16s} {body}")
    return "\n".join(lines)


# -- Table IV (energy) ------------------------------------------------------------------


def tab4_energy(
    specs: Sequence[WorkloadSpec],
    configs: Sequence[str] = TAB4_CONFIGS,
    jobs: Optional[int] = None,
) -> Tuple[List[List[object]], EvaluationResult]:
    """Average per-level energy (nJ) and normalized geomean (Table IV)."""
    evaluation = run_suite(specs, list(configs), jobs=jobs)
    model = EnergyModel()
    all_configs = ["no"] + [c for c in configs if c != "no"]
    reports = {
        name: {w: model.report(evaluation.stats(name, w)) for w in evaluation.workloads()}
        for name in all_configs
    }
    rows: List[List[object]] = []
    base = reports["no"]
    for name in all_configs:
        level_means = {
            level: statistics.mean(r.per_level[level] for r in reports[name].values())
            for level in ("L1I", "L1D", "L2C", "LLC")
        }
        if name == "no":
            norm = 1.0
        else:
            norm = geometric_mean(
                [
                    reports[name][w].total_nj / base[w].total_nj
                    for w in reports[name]
                ]
            )
        rows.append(
            [
                name,
                level_means["L1I"],
                level_means["L1D"],
                level_means["L2C"],
                level_means["LLC"],
                norm,
            ]
        )
    return rows, evaluation


def render_tab4(rows: Sequence[Sequence[object]]) -> str:
    headers = ["config", "L1I nJ", "L1D nJ", "L2C nJ", "LLC nJ", "geomean (norm.)"]
    return "Table IV — average energy per cache level\n" + format_table(
        headers, rows, float_format="{:.4g}"
    )


# -- Figure 11 (ablation) ------------------------------------------------------------------


def fig11_ablation(
    specs: Sequence[WorkloadSpec],
    sizes: Sequence[int] = (2048, 4096, 8192),
    config: Optional[SimConfig] = None,
) -> Dict[str, Dict[int, float]]:
    """Geomean speedup per ablation variant and table size (Figure 11)."""
    sim_config = config or SimConfig()
    # The no-prefetch baseline is shared with every run_suite figure: take
    # it from the run cache instead of re-simulating once per figure.
    baseline: Dict[str, float] = {
        spec.name: run_cached(spec, "no", sim_config).stats.ipc for spec in specs
    }

    out: Dict[str, Dict[int, float]] = {name: {} for name in ABLATION_NAMES}
    for variant in ABLATION_NAMES:
        for size in sizes:
            ratios = []
            for spec in specs:
                trace = _cached_workload(spec)
                units = _cached_units(spec, sim_config.line_size)
                warm = int(spec.n_instructions * 0.4)
                stats = simulate(
                    trace,
                    make_ablation(variant, size),
                    config=sim_config,
                    units=units,
                    warmup_instructions=warm,
                ).stats
                base_ipc = baseline[spec.name]
                ratios.append(stats.ipc / base_ipc if base_ipc else 0.0)
            out[variant][size] = robust_geometric_mean(
                ratios, context=f"fig11[{variant}, {size}]"
            )
    return out


def render_fig11(data: Dict[str, Dict[int, float]]) -> str:
    sizes = sorted(next(iter(data.values())))
    headers = ["variant"] + [f"{s // 1024}K" for s in sizes]
    rows = [[variant] + [data[variant][s] for s in sizes] for variant in data]
    return "Fig 11 — breakdown of the contributions to performance\n" + format_table(
        headers, rows, float_format="{:.3f}"
    )


# -- Figures 12-15 (Entangling internals) --------------------------------------------------


@dataclass
class InternalsResult:
    """Per-category means of the Entangling-internal statistics."""

    format_fractions: Dict[str, Dict[int, float]]   # Fig 12
    avg_destinations: Dict[str, float]              # Fig 13
    avg_src_bb_size: Dict[str, float]               # Fig 14
    avg_dst_bb_size: Dict[str, float]               # Fig 15
    avg_prefetches_per_hit: Dict[str, float]


def figs12_to_15_internals(
    specs: Sequence[WorkloadSpec],
    entries: int = 4096,
    config: Optional[SimConfig] = None,
) -> InternalsResult:
    """Run Entangling and collect its internal statistics per category."""
    from repro.core.variants import make_entangling

    sim_config = config or SimConfig()
    categories = {spec.name: spec.category for spec in specs}
    per_workload_formats: Dict[str, Dict[int, int]] = {}
    dests: Dict[str, float] = {}
    src_bb: Dict[str, float] = {}
    dst_bb: Dict[str, float] = {}
    per_hit: Dict[str, float] = {}
    for spec in specs:
        prefetcher = make_entangling(entries)
        simulate(
            _cached_workload(spec),
            prefetcher,
            config=sim_config,
            units=_cached_units(spec, sim_config.line_size),
            warmup_instructions=int(spec.n_instructions * 0.4),
        )
        per_workload_formats[spec.name] = dict(prefetcher.table.stats.format_bits)
        dests[spec.name] = prefetcher.estats.avg_destinations_per_hit
        src_bb[spec.name] = prefetcher.estats.avg_src_bb_size
        dst_bb[spec.name] = prefetcher.estats.avg_dst_bb_size
        per_hit[spec.name] = prefetcher.estats.avg_prefetches_per_hit

    format_fractions: Dict[str, Dict[int, float]] = {}
    for name, counts in per_workload_formats.items():
        cat = categories[name]
        bucket = format_fractions.setdefault(cat, {})
        total = sum(counts.values()) or 1
        for bits, count in counts.items():
            bucket[bits] = bucket.get(bits, 0.0) + count / total
    for cat, bucket in format_fractions.items():
        n = sum(1 for name in categories if categories[name] == cat)
        for bits in bucket:
            bucket[bits] /= n

    return InternalsResult(
        format_fractions=format_fractions,
        avg_destinations=category_means(dests, categories),
        avg_src_bb_size=category_means(src_bb, categories),
        avg_dst_bb_size=category_means(dst_bb, categories),
        avg_prefetches_per_hit=category_means(per_hit, categories),
    )


def render_figs12_to_15(result: InternalsResult) -> str:
    lines = ["Fig 12 — destination compression formats (fraction per category)"]
    for cat, bucket in sorted(result.format_fractions.items()):
        body = "  ".join(f"{bits}b:{frac:.2f}" for bits, frac in sorted(bucket.items()))
        lines.append(f"  {cat:8s} {body}")
    lines.append("Fig 13 — average entangled destinations per hit")
    for cat, value in sorted(result.avg_destinations.items()):
        lines.append(f"  {cat:8s} {value:.2f}")
    lines.append("Fig 14 — average basic-block size (triggering block)")
    for cat, value in sorted(result.avg_src_bb_size.items()):
        lines.append(f"  {cat:8s} {value:.2f}")
    lines.append("Fig 15 — average basic-block size (entangled destinations)")
    for cat, value in sorted(result.avg_dst_bb_size.items()):
        lines.append(f"  {cat:8s} {value:.2f}")
    lines.append("Average prefetches per Entangled-table hit")
    for cat, value in sorted(result.avg_prefetches_per_hit.items()):
        lines.append(f"  {cat:8s} {value:.1f}")
    return "\n".join(lines)


# -- Section IV-E (physical addresses) ---------------------------------------------------------


def sec4e_physical(
    specs: Sequence[WorkloadSpec],
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Geomean speedups for physically-trained Entangling (Section IV-E)."""
    evaluation = run_suite(
        specs,
        ["entangling_2k_phys", "entangling_4k_phys", "entangling_8k_phys"],
        base_config=SimConfig().with_physical_addresses(),
        jobs=jobs,
    )
    return {
        name: evaluation.geomean_speedup(name)
        for name in ("entangling_2k_phys", "entangling_4k_phys", "entangling_8k_phys")
    }


def render_sec4e(speedups: Dict[str, float]) -> str:
    headers = ["config", "geomean IPC (norm.)"]
    rows = [[name, value] for name, value in speedups.items()]
    return "Section IV-E — physical-address training\n" + format_table(
        headers, rows, float_format="{:.3f}"
    )


# -- Figure 16 (CloudSuite) --------------------------------------------------------------------


FIG16_CONFIGS = (
    "next_line",
    "sn4l",
    "mana_2k",
    "mana_4k",
    "entangling_2k",
    "entangling_4k",
    "ideal",
)


def fig16_cloudsuite(
    specs: Sequence[WorkloadSpec],
    configs: Sequence[str] = FIG16_CONFIGS,
    jobs: Optional[int] = None,
) -> Tuple[Dict[str, Dict[str, float]], EvaluationResult]:
    """Normalized IPC per CloudSuite application (Figure 16)."""
    evaluation = run_suite(specs, list(configs), jobs=jobs)
    data = {name: evaluation.normalized_ipc(name) for name in configs}
    return data, evaluation


def render_fig16(data: Dict[str, Dict[str, float]]) -> str:
    workloads = sorted(next(iter(data.values())))
    headers = ["config"] + workloads
    rows = [[name] + [series[w] for w in workloads] for name, series in data.items()]
    return "Fig 16 — normalized IPC for CloudSuite applications\n" + format_table(
        headers, rows, float_format="{:.3f}"
    )


# -- Microservice extension (beyond the paper) -------------------------------------------------


MICROSERVICE_CONFIGS = (
    "next_line",
    "entangling_2k",
    "entangling_4k",
    "ideal",
)


def fig_microservice(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    configs: Sequence[str] = MICROSERVICE_CONFIGS,
    jobs: Optional[int] = None,
) -> Tuple[Dict[str, Dict[str, float]], EvaluationResult]:
    """Normalized IPC per microservice workload (single- and multi-tenant).

    An extension beyond the paper's figures: SLOFetch-style RPC-chain
    services, alone and context-switched 2-4 to a core, showing how much
    prefetch reach survives multi-tenant L1I/BTB thrashing.  ``specs``
    defaults to :func:`repro.workloads.microservice.microservice_suite`.
    """
    if specs is None:
        from repro.workloads.microservice import microservice_suite

        specs = microservice_suite()
    evaluation = run_suite(specs, list(configs), jobs=jobs)
    data = {name: evaluation.normalized_ipc(name) for name in configs}
    return data, evaluation


def render_fig_microservice(data: Dict[str, Dict[str, float]]) -> str:
    workloads = sorted(next(iter(data.values())))
    headers = ["config"] + workloads
    rows = [[name] + [series[w] for w in workloads] for name, series in data.items()]
    return (
        "Microservices — normalized IPC (single- and multi-tenant)\n"
        + format_table(headers, rows, float_format="{:.3f}")
    )
