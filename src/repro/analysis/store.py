"""Crash-safe, multi-process shared run store (cache format v4).

The run cache's disk layer grew up in PR 1 as "one JSON file per run
key in one flat directory".  That shape is fine for one sweep on one
machine; it falls over exactly where ROADMAP item 3 (evaluation as a
service) needs it most: thousands of entries in one directory, no
eviction, no coordination between concurrent evaluators, and no defined
behaviour when the disk fills mid-suite.  This module is the store those
gaps demanded:

* **Sharded layout** — entries live under 256 fan-out directories keyed
  by the first two hex digits of the run key
  (``<root>/ab/<key>.json``), so no single directory ever holds the
  whole corpus.  Entries written by the old flat layout (cache formats
  v2/v3) are still found, served, and migrated to their shard on first
  read — an existing warm cache survives the upgrade.

* **Eviction** — a size budget (``REPRO_RUN_CACHE_MAX_BYTES``) and an
  age bound (``REPRO_RUN_CACHE_MAX_AGE``, seconds) enforced
  LRU-by-atime (maintained via ``os.utime`` on read, so every process
  sharing the store agrees on recency).  A journalled index
  (``index.json``) makes startup accounting cheap and is rebuilt from a
  shard scan whenever it is missing, torn, or contradicts the disk.

* **Leases** — a claim protocol (``O_CREAT|O_EXCL`` lease files
  carrying pid/host, heartbeat = mtime) lets concurrent evaluators
  coalesce identical in-flight run keys: one process simulates, the
  rest :func:`await_result` and serve the published entry.  Followers
  steal leases whose owner died (dead pid on this host, or mtime older
  than ``REPRO_LEASE_TTL``).  Orphaned leases and staging tmp files are
  reaped on store open.

* **Graceful degradation** — ENOSPC/EIO/EROFS on any store write flips
  the store to read-only (logged once, counted, surfaced as a
  ``store_degraded`` telemetry event); the evaluation proceeds
  uncached instead of crashing hours in.

Every write goes through :mod:`repro.check.artifacts`' atomic
write-replace, and every entry carries the format stamp + checksum the
run cache has used since PR 2 — a torn or tampered entry is detected on
load and treated as a miss, never served.  The deterministic chaos
harness in :mod:`repro.check.fsfault` drives all of this under injected
filesystem faults.
"""

from __future__ import annotations

import errno
import json
import logging
import os
import re
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check.artifacts import atomic_write_bytes

logger = logging.getLogger(__name__)

#: Disk-entry format written by this store.  Decoupled from the *key*
#: format (see ``repro.analysis.runcache._KEY_FORMAT_VERSION``): v4
#: changed the layout and the store machinery, not the key derivation,
#: so existing v3 caches keep their keys and migrate in place.
STORE_FORMAT = 4

#: Entry formats servable on read.  v2/v3 entries share v4's schema and
#: checksum; only their directory layout differs (flat, not sharded).
ACCEPTED_ENTRY_FORMATS = (2, 3, STORE_FORMAT)

#: Default lease time-to-live (``REPRO_LEASE_TTL`` seconds): a lease
#: whose mtime is older than this counts as abandoned and may be stolen.
DEFAULT_LEASE_TTL = 30.0

#: Default follower poll period (``REPRO_LEASE_POLL`` seconds).
DEFAULT_LEASE_POLL = 0.2

#: Default cap on how long a follower waits on a live owner before
#: giving up and simulating locally (``REPRO_LEASE_MAX_WAIT`` seconds).
DEFAULT_LEASE_MAX_WAIT = 600.0

_ENTRY_NAME = re.compile(r"^[0-9a-f]{32}\.json$")
_SHARD_NAME = re.compile(r"^[0-9a-f]{2}$")

#: errno values that mean "this filesystem can no longer take writes" —
#: the triggers for read-only degradation (everything else stays the old
#: best-effort skip-this-write behaviour).
_DEGRADE_ERRNOS = frozenset(
    code
    for code in (
        errno.ENOSPC,
        errno.EIO,
        errno.EROFS,
        getattr(errno, "EDQUOT", None),
    )
    if code is not None
)


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer number of bytes, got {raw!r}"
        ) from None
    return value if value > 0 else None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number of seconds, got {raw!r}"
        ) from None
    return value if value > 0 else default


def _env_age(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number of seconds, got {raw!r}"
        ) from None
    return value if value > 0 else None


def coalesce_enabled() -> bool:
    """Whether in-flight run-key coalescing is on (``REPRO_COALESCE``)."""
    return os.environ.get("REPRO_COALESCE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def lease_ttl_from_env() -> float:
    return _env_float("REPRO_LEASE_TTL", DEFAULT_LEASE_TTL)


def lease_poll_from_env() -> float:
    return _env_float("REPRO_LEASE_POLL", DEFAULT_LEASE_POLL)


def lease_max_wait_from_env() -> float:
    return _env_float("REPRO_LEASE_MAX_WAIT", DEFAULT_LEASE_MAX_WAIT)


def _fsfault(op: str, path: str, scope: str) -> None:
    """Deterministic fault seam (see :mod:`repro.check.fsfault`).

    Zero-cost unless chaos is armed: nothing is imported when neither
    ``REPRO_FSFAULT`` is set nor an injector was installed in-process.
    """
    if (
        "repro.check.fsfault" not in sys.modules
        and not os.environ.get("REPRO_FSFAULT")
    ):
        return
    from repro.check.fsfault import fault_check

    fault_check(op, path, scope=scope)


def entry_checksum(data: Dict[str, Any]) -> str:
    """Checksum of a disk entry's payload (everything but ``checksum``).

    Byte-compatible with the v2/v3 entries written by
    ``RunCache._store_disk`` since PR 2 — a migrated legacy entry
    re-validates with the same function that sealed it.
    """
    import hashlib

    payload = {k: v for k, v in data.items() if k != "checksum"}
    text = json.dumps(
        _plain_canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _plain_canonical(value: Any) -> Any:
    """Canonical form for already-JSON-shaped data (sorted str keys)."""
    if isinstance(value, dict):
        return {
            str(k): _plain_canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_plain_canonical(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# leases
# ---------------------------------------------------------------------------


@dataclass
class Lease:
    """One held claim on a run key.  ``path`` is None for the degraded
    stand-in lease (store could not create the file; the caller owns the
    work but nothing on disk coordinates it)."""

    key: str
    path: Optional[str]
    released: bool = False


@dataclass
class EntryInfo:
    """One on-disk entry as seen by a shard scan."""

    key: str
    path: str
    size: int
    mtime: float
    legacy: bool = False


class LeaseKeeper(threading.Thread):
    """Daemon heartbeating held leases (mtime refresh) every ``ttl/3``.

    Keeps a long-running owner's leases visibly alive so followers keep
    waiting instead of stealing; dies with the process, at which point
    the mtime goes stale and the TTL takes over.
    """

    def __init__(self, store: "ShardedRunStore", leases: List[Lease]):
        super().__init__(daemon=True, name="repro-lease-keeper")
        self.store = store
        self.leases = [lease for lease in leases if lease.path]
        self.interval = max(0.05, store.lease_ttl / 3.0)
        # NB: not ``_stop`` — that name shadows a threading.Thread
        # internal that ``join()`` calls.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            for lease in self.leases:
                if lease.released or not lease.path:
                    continue
                try:
                    os.utime(lease.path)
                except OSError:
                    pass  # released/stolen/unwritable — TTL decides

    def stop(self) -> None:
        self._halt.set()


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class ShardedRunStore:
    """The shared on-disk half of the run cache (format v4).

    All methods are crash-safe and never raise for IO damage: reads
    report a status, writes return success, and an unwritable filesystem
    degrades the store to read-only instead of killing the evaluation.
    ``clock`` is injectable for deterministic age/eviction tests.
    """

    def __init__(
        self,
        root: str,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        lease_ttl: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        reap_on_open: bool = True,
        auto_maintain: bool = True,
    ) -> None:
        self.root = root
        self.clock = clock
        self.max_bytes = (
            max_bytes
            if max_bytes is not None
            else _env_int("REPRO_RUN_CACHE_MAX_BYTES")
        )
        self.max_age = (
            max_age if max_age is not None else _env_age("REPRO_RUN_CACHE_MAX_AGE")
        )
        self.lease_ttl = lease_ttl if lease_ttl is not None else lease_ttl_from_env()
        self.host = socket.gethostname()
        #: Duck-typed telemetry hook (an ``EventBus``): cache_evicted /
        #: store_degraded events, same zero-cost pattern as RunCache.
        self.publisher: Optional[Any] = None

        # degradation state
        self.read_only = False
        self.degrade_reason: Optional[str] = None
        self.write_errors = 0

        # counters
        self.evictions = 0
        self.evicted_bytes = 0
        self.migrated = 0
        self.index_rebuilds = 0
        self.reaped_leases = 0
        self.reaped_tmps = 0
        self.lease_claims = 0
        self.lease_conflicts = 0
        self.lease_steals = 0

        #: journal hint: key -> (size, last-use); authoritative totals
        #: always come from a shard scan (see :meth:`maintain`).
        self._index: Dict[str, Tuple[int, float]] = {}
        self._approx_bytes = 0

        try:
            os.makedirs(root, exist_ok=True)
        except OSError as exc:
            self._note_write_error(exc, "store root")
        self._load_index()
        if reap_on_open:
            self.reap()
        if auto_maintain and (
            self.max_age is not None or self.max_bytes is not None
        ):
            self.maintain()

    # -- paths --------------------------------------------------------------

    def shard_dir(self, key: str) -> str:
        return os.path.join(self.root, key[:2])

    def path_for(self, key: str) -> str:
        return os.path.join(self.shard_dir(key), f"{key}.json")

    def legacy_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def lease_path(self, key: str) -> str:
        return os.path.join(self.shard_dir(key), f"{key}.lease")

    def index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    # -- degradation --------------------------------------------------------

    def _note_write_error(self, exc: OSError, what: str) -> None:
        self.write_errors += 1
        if self.read_only or exc.errno not in _DEGRADE_ERRNOS:
            logger.debug("run store write to %s failed: %s", what, exc)
            return
        self.read_only = True
        self.degrade_reason = f"{what}: {exc}"
        # Log once, loudly: from here on the evaluation proceeds uncached.
        logger.error(
            "run store %s degraded to read-only (%s); evaluation continues "
            "uncached",
            self.root,
            self.degrade_reason,
        )
        self._publish(
            "store_degraded",
            payload={"root": self.root, "reason": self.degrade_reason},
        )

    def _publish(self, type_: str, **kwargs: Any) -> None:
        if self.publisher is None:
            return
        try:
            self.publisher.emit(type_, **kwargs)
        except Exception:  # noqa: BLE001 — telemetry never breaks the store
            logger.debug("store event publish failed", exc_info=True)

    # -- entries ------------------------------------------------------------

    def publish(self, key: str, payload: Dict[str, Any]) -> bool:
        """Seal ``payload`` (format + checksum) and publish it atomically.

        Returns False (without raising) when the store is read-only or
        the write failed; an ENOSPC/EIO/EROFS failure degrades the store.
        """
        if self.read_only:
            return False
        data = dict(payload)
        data["format"] = STORE_FORMAT
        data.pop("checksum", None)
        data["checksum"] = entry_checksum(data)
        path = self.path_for(key)
        now = self.clock()
        try:
            os.makedirs(self.shard_dir(key), exist_ok=True)
            blob = json.dumps(data).encode("utf-8")
            atomic_write_bytes(path, blob, fsync=False, scope="cache")
            os.utime(path, (now, now))
        except OSError as exc:
            self._note_write_error(exc, f"entry {key[:8]}")
            return False
        self._index[key] = (len(blob), now)
        self._approx_bytes += len(blob)
        if self._over_budget() or self._has_expired_hint(now):
            self.maintain(protect=frozenset((key,)))
        return True

    def load(self, key: str) -> Tuple[Optional[Dict[str, Any]], str]:
        """Read one entry: ``(data, status)`` with status in
        ``ok | missing | corrupt | stale`` (stale = unknown format
        version, by definition written by some other era — a miss, not
        damage).  Legacy flat-layout entries are served and migrated to
        their shard."""
        data, status = self._read_path(self.path_for(key))
        if status == "missing":
            data, status = self._read_path(self.legacy_path(key))
            if status == "ok":
                self._migrate(key, data)
        if status == "ok":
            self.touch(key)
        return (data, status) if status == "ok" else (None, status)

    def _read_path(self, path: str) -> Tuple[Optional[Dict[str, Any]], str]:
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None, "missing"
        except OSError:
            return None, "corrupt"
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None, "corrupt"
        if not isinstance(data, dict):
            return None, "corrupt"
        if data.get("format") not in ACCEPTED_ENTRY_FORMATS:
            return None, "stale"
        if data.get("checksum") != entry_checksum(data):
            return None, "corrupt"
        return data, "ok"

    def _migrate(self, key: str, data: Dict[str, Any]) -> None:
        """Rewrite a legacy flat entry at its shard path (best effort)."""
        self.migrated += 1
        payload = {
            k: v for k, v in data.items() if k not in ("format", "checksum")
        }
        if self.publish(key, payload):
            try:
                os.unlink(self.legacy_path(key))
            except OSError:
                pass

    def touch(self, key: str) -> None:
        """Record a use for LRU purposes (file mtime + journal hint)."""
        now = self.clock()
        path = self.path_for(key)
        try:
            os.utime(path, (now, now))
        except OSError:
            path = self.legacy_path(key)
            try:
                os.utime(path, (now, now))
            except OSError:
                return
        size = self._index.get(key, (0, 0.0))[0]
        if not size:
            try:
                size = os.stat(path).st_size
            except OSError:
                size = 0
        self._index[key] = (size, now)

    def remove(self, key: str) -> int:
        """Unlink one entry (both layouts); returns bytes reclaimed."""
        reclaimed = 0
        for path in (self.path_for(key), self.legacy_path(key)):
            try:
                reclaimed += os.stat(path).st_size
                os.unlink(path)
            except OSError:
                continue
        size, _ = self._index.pop(key, (0, 0.0))
        self._approx_bytes = max(0, self._approx_bytes - max(size, reclaimed))
        return reclaimed

    # -- scanning / index ---------------------------------------------------

    def scan(self) -> List[EntryInfo]:
        """Authoritative walk of every entry (sharded and legacy flat)."""
        entries: List[EntryInfo] = []
        try:
            root_listing = list(os.scandir(self.root))
        except OSError:
            return entries
        for item in root_listing:
            name = item.name
            if item.is_file() and _ENTRY_NAME.match(name):
                try:
                    st = item.stat()
                except OSError:
                    continue
                entries.append(
                    EntryInfo(name[:-5], item.path, st.st_size, st.st_mtime,
                              legacy=True)
                )
            elif item.is_dir() and _SHARD_NAME.match(name):
                try:
                    shard_listing = list(os.scandir(item.path))
                except OSError:
                    continue
                for sub in shard_listing:
                    if not (sub.is_file() and _ENTRY_NAME.match(sub.name)):
                        continue
                    try:
                        st = sub.stat()
                    except OSError:
                        continue
                    entries.append(
                        EntryInfo(sub.name[:-5], sub.path, st.st_size,
                                  st.st_mtime)
                    )
        return entries

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.scan())

    def _over_budget(self) -> bool:
        return self.max_bytes is not None and self._approx_bytes > self.max_bytes

    def _has_expired_hint(self, now: float) -> bool:
        if self.max_age is None:
            return False
        horizon = now - self.max_age
        return any(used < horizon for _size, used in self._index.values())

    def _load_index(self) -> None:
        """Journal hint: fast startup accounting, scan when untrustworthy."""
        try:
            with open(self.index_path(), "rb") as fh:
                data = json.loads(fh.read().decode("utf-8"))
        except FileNotFoundError:
            data = None
        except (OSError, ValueError, UnicodeDecodeError):
            data = None
            logger.warning(
                "run store index %s is torn/unreadable; rebuilding from "
                "shard scan", self.index_path(),
            )
        if (
            not isinstance(data, dict)
            or data.get("format") != STORE_FORMAT
            or not isinstance(data.get("entries"), dict)
        ):
            self._rebuild_index()
            return
        index: Dict[str, Tuple[int, float]] = {}
        try:
            for key, value in data["entries"].items():
                index[str(key)] = (int(value[0]), float(value[1]))
        except (TypeError, ValueError, IndexError):
            self._rebuild_index()
            return
        self._index = index
        self._approx_bytes = sum(size for size, _used in index.values())

    def _rebuild_index(self) -> None:
        self.index_rebuilds += 1
        entries = self.scan()
        self._index = {e.key: (e.size, e.mtime) for e in entries}
        self._approx_bytes = sum(e.size for e in entries)

    def _write_index(self) -> None:
        if self.read_only:
            return
        payload = {
            "format": STORE_FORMAT,
            "written": self.clock(),
            "entries": {
                key: [size, used] for key, (size, used) in self._index.items()
            },
        }
        try:
            atomic_write_bytes(
                self.index_path(),
                json.dumps(payload).encode("utf-8"),
                fsync=False,
                scope="cache",
            )
        except OSError as exc:
            self._note_write_error(exc, "index journal")

    # -- eviction -----------------------------------------------------------

    def maintain(
        self, protect: frozenset = frozenset(), force: bool = False
    ) -> Tuple[int, int]:
        """Enforce the age bound and byte budget; returns
        ``(entries_evicted, bytes_evicted)``.

        The scan is authoritative (the journal is only a trigger hint),
        so concurrent writers can never hide bytes from the budget.
        Oldest-last-use goes first; ``protect``\\ ed keys (the entry just
        published) are evicted only if the budget cannot be met without
        them — the byte budget is a hard ceiling.
        """
        if self.max_bytes is None and self.max_age is None and not force:
            return (0, 0)
        entries = self.scan()
        # Merge journal recency over scan mtimes: the journal may know of
        # uses the filesystem lost (e.g. a failed utime on a read-only
        # bind mount); take the newer of the two.
        by_use: List[Tuple[float, EntryInfo]] = []
        for entry in entries:
            hint = self._index.get(entry.key, (0, 0.0))[1]
            by_use.append((max(entry.mtime, hint), entry))
        now = self.clock()
        evicted = 0
        evicted_bytes = 0
        survivors: List[Tuple[float, EntryInfo]] = []
        for used, entry in by_use:
            if self.max_age is not None and now - used > self.max_age:
                evicted += 1
                evicted_bytes += self._evict(entry, "age")
            else:
                survivors.append((used, entry))
        if self.max_bytes is not None:
            survivors.sort(key=lambda pair: pair[0])
            total = sum(entry.size for _used, entry in survivors)
            deferred: List[EntryInfo] = []
            for used, entry in survivors:
                if total <= self.max_bytes:
                    break
                if entry.key in protect:
                    deferred.append(entry)
                    continue
                total -= entry.size
                evicted += 1
                evicted_bytes += self._evict(entry, "size")
            for entry in deferred:
                if total <= self.max_bytes:
                    break
                total -= entry.size
                evicted += 1
                evicted_bytes += self._evict(entry, "size")
        self._index = {
            e.key: (e.size, max(e.mtime, self._index.get(e.key, (0, 0.0))[1]))
            for e in self.scan()
        }
        self._approx_bytes = sum(size for size, _used in self._index.values())
        self._write_index()
        return evicted, evicted_bytes

    def _evict(self, entry: EntryInfo, reason: str) -> int:
        try:
            os.unlink(entry.path)
        except OSError:
            return 0
        self.evictions += 1
        self.evicted_bytes += entry.size
        self._publish(
            "cache_evicted",
            run=entry.key,
            payload={"bytes": entry.size, "reason": reason},
        )
        return entry.size

    # -- leases -------------------------------------------------------------

    def claim(self, key: str) -> Optional[Lease]:
        """Try to claim ``key``: a :class:`Lease` when this process owns
        the simulation, None when another live process already does.

        An unwritable filesystem returns a path-less stand-in lease: the
        caller simulates locally and coalescing is silently off (never
        blocked) for this key.
        """
        path = self.lease_path(key)
        try:
            # Separate from the O_EXCL open below: a *file* squatting on
            # the shard path also raises FileExistsError, and that is a
            # write failure, not somebody else's lease.
            os.makedirs(self.shard_dir(key), exist_ok=True)
        except OSError as exc:
            self._note_write_error(exc, f"shard {key[:2]}")
            return Lease(key, None)
        try:
            _fsfault("lease", path, "cache")
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            self.lease_conflicts += 1
            return None
        except OSError as exc:
            self._note_write_error(exc, f"lease {key[:8]}")
            return Lease(key, None)
        try:
            os.write(
                fd,
                json.dumps(
                    {"pid": os.getpid(), "host": self.host,
                     "created": time.time()}
                ).encode("utf-8"),
            )
        except OSError:
            pass
        finally:
            os.close(fd)
        self.lease_claims += 1
        return Lease(key, path)

    def release(self, lease: Optional[Lease]) -> None:
        if lease is None or lease.released:
            return
        lease.released = True
        if lease.path:
            try:
                os.unlink(lease.path)
            except OSError:
                pass

    def lease_state(self, key: str) -> Tuple[str, Optional[Dict[str, Any]]]:
        """``("free"|"held"|"stale", info)`` for ``key``'s lease.

        Stale means the owner is provably gone: its pid is dead on this
        host, or the lease heartbeat (mtime) is older than the TTL.
        A torn/unreadable lease body falls back to the TTL alone.
        """
        path = self.lease_path(key)
        try:
            st = os.stat(path)
        except OSError:
            return "free", None
        info: Optional[Dict[str, Any]] = None
        try:
            with open(path, "rb") as fh:
                parsed = json.loads(fh.read().decode("utf-8"))
            if isinstance(parsed, dict):
                info = parsed
        except (OSError, ValueError, UnicodeDecodeError):
            info = None
        if time.time() - st.st_mtime > self.lease_ttl:
            return "stale", info
        if info is not None and info.get("host") == self.host:
            try:
                pid = int(info.get("pid", 0))
            except (TypeError, ValueError):
                pid = 0
            if pid > 0 and not _pid_alive(pid):
                return "stale", info
        return "held", info

    def steal(self, key: str) -> Optional[Lease]:
        """Take over a stale lease: reap it, then race an ``O_EXCL``
        claim.  Exactly one of several stealers wins; the losers get
        None and go back to waiting on the winner."""
        state, _info = self.lease_state(key)
        if state == "held":
            return None
        if state == "stale":
            try:
                os.unlink(self.lease_path(key))
            except OSError:
                pass
        lease = self.claim(key)
        if lease is not None and state == "stale":
            self.lease_steals += 1
        return lease

    def reap(self) -> Tuple[int, int]:
        """Remove provably-orphaned leases and staging tmp files.

        Called on open: a crashed fleet leaves lease files with dead
        owners and ``*.tmp`` staging files that never got renamed; both
        are garbage once stale for a TTL.
        """
        leases = tmps = 0
        now = time.time()
        try:
            listing = list(os.scandir(self.root))
        except OSError:
            return (0, 0)
        dirs = [self.root] + [
            item.path
            for item in listing
            if item.is_dir() and _SHARD_NAME.match(item.name)
        ]
        for directory in dirs:
            try:
                items = list(os.scandir(directory))
            except OSError:
                continue
            for item in items:
                if not item.is_file():
                    continue
                if item.name.endswith(".lease"):
                    key = item.name[: -len(".lease")]
                    state, _info = self.lease_state(key)
                    if state == "stale":
                        try:
                            os.unlink(item.path)
                            leases += 1
                        except OSError:
                            pass
                elif item.name.endswith(".tmp"):
                    try:
                        if now - item.stat().st_mtime > self.lease_ttl:
                            os.unlink(item.path)
                            tmps += 1
                    except OSError:
                        pass
        self.reaped_leases += leases
        self.reaped_tmps += tmps
        return leases, tmps

    # -- inspection ---------------------------------------------------------

    def verify(self, purge: bool = False) -> Dict[str, Any]:
        """Checksum-scan every entry; optionally purge the bad ones."""
        ok = corrupt = stale = purged = 0
        bad_paths: List[str] = []
        for entry in self.scan():
            _data, status = self._read_path(entry.path)
            if status == "ok":
                ok += 1
                continue
            if status == "stale":
                stale += 1
            else:
                corrupt += 1
            bad_paths.append(entry.path)
            if purge:
                try:
                    os.unlink(entry.path)
                    purged += 1
                except OSError:
                    pass
        return {
            "ok": ok,
            "corrupt": corrupt,
            "stale": stale,
            "purged": purged,
            "bad_paths": bad_paths,
        }

    def describe(self) -> List[str]:
        """Human-readable status lines for ``repro store stats``."""
        entries = self.scan()
        total = sum(e.size for e in entries)
        legacy = sum(1 for e in entries if e.legacy)
        shards = len({e.key[:2] for e in entries if not e.legacy})
        budget = (
            f"{self.max_bytes} bytes" if self.max_bytes is not None else "none"
        )
        age = f"{self.max_age:.0f}s" if self.max_age is not None else "none"
        lines = [
            f"store: {self.root}",
            f"entries: {len(entries)} ({legacy} legacy flat), "
            f"{total} bytes across {shards} shard dir(s)",
            f"budget: {budget}, max age: {age}, lease ttl: "
            f"{self.lease_ttl:.0f}s",
            f"evictions: {self.evictions} ({self.evicted_bytes} bytes), "
            f"migrated: {self.migrated}, index rebuilds: "
            f"{self.index_rebuilds}",
            f"leases: {self.lease_claims} claimed, {self.lease_conflicts} "
            f"conflicts, {self.lease_steals} stolen, {self.reaped_leases} "
            f"reaped (+{self.reaped_tmps} tmp)",
        ]
        if self.read_only:
            lines.append(f"DEGRADED read-only: {self.degrade_reason}")
        return lines


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. EPERM: alive but not ours
    return True


# ---------------------------------------------------------------------------
# follower protocol (stampede coalescing)
# ---------------------------------------------------------------------------


def await_result(
    cache: Any,
    store: ShardedRunStore,
    key: str,
    label: str,
    bus: Optional[Any] = None,
    poll: Optional[float] = None,
    max_wait: Optional[float] = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
) -> Optional[Any]:
    """Follow an in-flight run key owned by another process.

    Polls the shared store until the owner publishes (returns the served
    result, counted as a coalesced hit on ``cache``) or the lease goes
    free/stale or ``max_wait`` elapses (returns None: the caller should
    :meth:`ShardedRunStore.steal` and simulate locally).
    """
    poll = poll if poll is not None else lease_poll_from_env()
    max_wait = max_wait if max_wait is not None else lease_max_wait_from_env()
    state, info = store.lease_state(key)
    owner = info.get("pid") if isinstance(info, dict) else None
    cache.lease_waits += 1
    started = clock()
    if bus is not None:
        try:
            bus.emit(
                "lease_wait",
                label=label,
                run=key,
                payload={"owner_pid": owner},
            )
        except Exception:  # noqa: BLE001
            logger.debug("lease_wait publish failed", exc_info=True)
    while True:
        hit = cache.wait_probe(key, label=label)
        if hit is not None:
            return hit
        state, _info = store.lease_state(key)
        if state != "held":
            return None
        if clock() - started > max_wait:
            logger.warning(
                "gave up waiting %.0fs on lease %s (%s); simulating locally",
                max_wait, key[:8], label,
            )
            return None
        sleep(poll)
