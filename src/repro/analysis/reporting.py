"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.parallel import FaultReport
    from repro.sim.stats import SimStats


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned text table (monospace)."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_timing_table(
    entries: Sequence[Tuple[str, str, "SimStats"]],
    title: str = "Simulation timing",
    faults: Optional["FaultReport"] = None,
) -> str:
    """Per-run wall-clock and simulator-throughput telemetry.

    ``entries`` are (config, workload, stats) triples — see
    ``EvaluationResult.timing_entries``.  Throughput is reported in
    simulated kilocycles and kilo-instructions per wall-clock second;
    ``tries`` is the executor attempts the run consumed (>1 means the
    fault-tolerant runner retried it).  Pass an evaluation's ``faults``
    report to append the retry/timeout/quarantine summary.

    Runs served by the run cache (``stats.from_cache``) carry the
    *original* simulation's wall-clock, so they render as ``cached`` and
    are excluded from the total row and the phase breakdown — the
    aggregate reflects only work this evaluation actually performed.

    Footers compose deterministically: the phase breakdown (ties broken
    by phase name), then the fault summary, then one sorted line per
    quarantined task, then the sorted stale-heartbeat list — the same
    inputs always render the same text.
    """
    headers = ["config", "workload", "wall s", "kcycles/s", "kinstr/s", "tries"]
    rows = []
    total_wall = 0.0
    total_instrs = 0
    total_cycles = 0
    total_attempts = 0
    phase_totals: dict = {}
    cached_runs = 0
    for config, workload, stats in entries:
        if getattr(stats, "from_cache", False):
            # Cache hits carry the original run's timing: show the row
            # (flagged) but keep stale numbers out of every aggregate.
            cached_runs += 1
            rows.append(
                [
                    config,
                    workload,
                    stats.wall_seconds,
                    stats.cycles_per_second / 1e3,
                    stats.instrs_per_second / 1e3,
                    "cached",
                ]
            )
            continue
        total_wall += stats.wall_seconds
        total_instrs += stats.instructions
        total_cycles += stats.cycles
        total_attempts += stats.attempts
        for phase, seconds in stats.phase_seconds.items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        rows.append(
            [
                config,
                workload,
                stats.wall_seconds,
                stats.cycles_per_second / 1e3,
                stats.instrs_per_second / 1e3,
                str(stats.attempts),
            ]
        )
    if entries:
        scale = 1e3 * total_wall if total_wall > 0 else 0.0
        rows.append(
            [
                "(total)",
                "",
                total_wall,
                total_cycles / scale if scale else 0.0,
                total_instrs / scale if scale else 0.0,
                str(total_attempts),
            ]
        )
    text = f"{title}\n" + format_table(headers, rows, float_format="{:.2f}")
    if cached_runs:
        text += (
            f"\n({cached_runs} run(s) served from the run cache; their "
            f"timing reflects the original simulations and is excluded "
            f"from the total row)"
        )
    if phase_totals:
        # Profiled runs carry per-phase wall-clock (see repro.obs.profiler);
        # aggregate them into one breakdown line under the table.
        spent = sum(phase_totals.values())
        parts = "  ".join(
            f"{phase}={seconds:.2f}s"
            + (f" ({100.0 * seconds / spent:.0f}%)" if spent > 0 else "")
            for phase, seconds in sorted(
                phase_totals.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        text += f"\nphase breakdown: {parts}"
    if faults is not None and (not faults.clean or faults.heartbeat_stale):
        text += "\n" + faults.summary_line()
        for failure in sorted(
            faults.quarantined, key=lambda f: (f.label, f.error)
        ):
            text += (
                f"\n  quarantined {failure.label} "
                f"({failure.attempts} attempts): {failure.error}"
            )
        if faults.stale_tasks:
            stale = ", ".join(sorted(set(faults.stale_tasks)))
            text += f"\n  stale heartbeats: {stale}"
    return text


def format_series(name: str, values: Sequence[float], per_line: int = 10) -> str:
    """Render a named numeric series (an S-curve) compactly."""
    chunks = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        chunks.append(" ".join(f"{v:.3f}" for v in chunk))
    body = "\n  ".join(chunks)
    return f"{name}:\n  {body}"
