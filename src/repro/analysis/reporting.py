"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned text table (monospace)."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float], per_line: int = 10) -> str:
    """Render a named numeric series (an S-curve) compactly."""
    chunks = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        chunks.append(" ".join(f"{v:.3f}" for v in chunk))
    body = "\n  ".join(chunks)
    return f"{name}:\n  {body}"
