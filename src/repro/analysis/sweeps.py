"""Micro-architectural parameter sweeps.

Helpers for sensitivity studies around the paper's fixed design points:
sweep any :class:`~repro.sim.config.SimConfig` field (prefetch-queue
size, MSHR count, FTQ depth, ...) or any
:class:`~repro.core.entangling.EntanglingConfig` field for one workload
suite and collect the headline metrics per point.

The paper itself motivates one of these: "our prefetcher would benefit
from a larger prefetch queue (32 entries employed in our evaluation), as
less prefetches would be discarded" (Section IV-D) —
``sweep_sim_parameter(..., "prefetch_queue_size", [16, 32, 64, 128])``
quantifies exactly that.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Callable, List, Optional, Sequence

logger = logging.getLogger(__name__)

from repro.analysis.experiments import (
    _cached_units,
    _cached_workload,
    resolve_warmup,
    run_cached,
)
from repro.analysis.metrics import robust_geometric_mean
from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher
from repro.prefetchers.base import InstructionPrefetcher
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate
from repro.workloads.generators import WorkloadSpec


@dataclasses.dataclass
class SweepPoint:
    """Aggregate metrics for one parameter value.

    ``failures`` counts workloads that were skipped — either they raised
    during simulation or they produced a zero-IPC baseline whose speedup
    ratio is meaningless (the point aggregates over the survivors); a
    long sensitivity sweep degrades per-workload instead of dying
    wholesale.
    """

    value: object
    geomean_speedup: float
    mean_coverage: float
    mean_accuracy: float
    mean_pq_drops: float
    failures: int = 0


def _evaluate_point(
    specs: Sequence[WorkloadSpec],
    make_prefetcher: Callable[[], InstructionPrefetcher],
    sim_config: SimConfig,
) -> SweepPoint:
    ratios: List[float] = []
    coverages: List[float] = []
    accuracies: List[float] = []
    drops: List[float] = []
    failures = 0
    for spec in specs:
        try:
            trace = _cached_workload(spec)
            units = _cached_units(spec, sim_config.line_size)
            # Both legs of the comparison must share one warm-up window
            # (resolve_warmup); a hardcoded fraction here would silently
            # diverge from the cached `no` baselines if
            # experiments.WARMUP_FRACTION ever changed.
            warm = resolve_warmup(spec, None)
            # The baseline repeats across sweep points (and across sweeps
            # with the same SimConfig): serve it from the run cache.
            base = run_cached(spec, "no", sim_config).stats
            stats = simulate(
                trace, make_prefetcher(), config=sim_config, units=units,
                warmup_instructions=warm,
            ).stats
        except Exception as exc:  # noqa: BLE001 — skip, don't kill the sweep
            failures += 1
            logger.warning(
                "sweep point skipped workload %s: %s: %s",
                spec.name, type(exc).__name__, exc,
            )
            continue
        if base.ipc <= 0.0:
            # A zero-IPC baseline (e.g. a degenerate or faulted run) has
            # no meaningful speedup ratio: skip-and-flag like a raised
            # workload instead of poisoning the strict geomean.
            failures += 1
            logger.warning(
                "sweep point skipped workload %s: zero-IPC baseline",
                spec.name,
            )
            continue
        ratios.append(stats.ipc / base.ipc)
        coverages.append(stats.coverage_vs(base))
        accuracies.append(stats.accuracy)
        drops.append(float(stats.prefetches_dropped_pq_full))
    # robust_geometric_mean skips-and-warns non-positive ratios (a
    # zero-IPC prefetcher run against a healthy baseline); surface those
    # skips in the point's failure count too.
    failures += sum(1 for ratio in ratios if ratio <= 0.0)
    n = max(1, len(ratios))
    return SweepPoint(
        value=None,
        geomean_speedup=(
            robust_geometric_mean(ratios, context="sweep point")
            if ratios
            else 0.0
        ),
        mean_coverage=sum(coverages) / n,
        mean_accuracy=sum(accuracies) / n,
        mean_pq_drops=sum(drops) / n,
        failures=failures,
    )


def sweep_sim_parameter(
    specs: Sequence[WorkloadSpec],
    field: str,
    values: Sequence[object],
    make_prefetcher: Optional[Callable[[], InstructionPrefetcher]] = None,
    base_config: Optional[SimConfig] = None,
) -> List[SweepPoint]:
    """Sweep one :class:`SimConfig` field.

    Raises:
        ValueError: the field does not exist on :class:`SimConfig`.
    """
    config = base_config or SimConfig()
    if not hasattr(config, field):
        raise ValueError(f"SimConfig has no field {field!r}")
    factory = make_prefetcher or (lambda: EntanglingPrefetcher())
    points: List[SweepPoint] = []
    for value in values:
        sim_config = dataclasses.replace(config, **{field: value})
        point = _evaluate_point(specs, factory, sim_config)
        point.value = value
        points.append(point)
    return points


def sweep_entangling_parameter(
    specs: Sequence[WorkloadSpec],
    field: str,
    values: Sequence[object],
    base_config: Optional[EntanglingConfig] = None,
    sim_config: Optional[SimConfig] = None,
) -> List[SweepPoint]:
    """Sweep one :class:`EntanglingConfig` field.

    Raises:
        ValueError: the field does not exist on :class:`EntanglingConfig`.
    """
    entangling_config = base_config or EntanglingConfig()
    if not hasattr(entangling_config, field):
        raise ValueError(f"EntanglingConfig has no field {field!r}")
    config = sim_config or SimConfig()
    points: List[SweepPoint] = []
    for value in values:
        variant = dataclasses.replace(entangling_config, **{field: value})
        point = _evaluate_point(
            specs, lambda v=variant: EntanglingPrefetcher(v), config
        )
        point.value = value
        points.append(point)
    return points


def render_sweep(title: str, points: Sequence[SweepPoint]) -> str:
    lines = [title]
    for point in points:
        line = (
            f"  {str(point.value):>8s}  speedup={point.geomean_speedup:.3f}  "
            f"coverage={point.mean_coverage:.3f}  "
            f"accuracy={point.mean_accuracy:.3f}  "
            f"pq_drops={point.mean_pq_drops:.0f}"
        )
        if point.failures:
            line += f"  ({point.failures} workload(s) failed, skipped)"
        lines.append(line)
    return "\n".join(lines)
