"""Aggregate metrics used by the paper's figures."""

from __future__ import annotations

import math
import warnings
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.sim.stats import SimStats


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises ValueError on non-positive inputs."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def robust_geometric_mean(values: Iterable[float], context: str = "") -> float:
    """Geometric mean over the *positive* values, flagging what it skipped.

    Faulted or partial evaluations (see ``EvaluationResult.faults``) can
    yield zero-IPC runs whose normalized ratio is 0.0; aborting an entire
    report over one bad pair helps nobody, so those pairs are skipped and
    reported via a ``RuntimeWarning``.  Returns 0.0 when nothing is left.
    """
    values = list(values)
    positive = [v for v in values if v > 0]
    skipped = len(values) - len(positive)
    if skipped:
        where = f" in {context}" if context else ""
        warnings.warn(
            f"geometric mean skipped {skipped} non-positive value(s){where} "
            f"(missing or zero-IPC runs from a partial evaluation)",
            RuntimeWarning,
            stacklevel=2,
        )
    if not positive:
        return 0.0
    return geometric_mean(positive)


def normalized_ipc(stats: SimStats, baseline: SimStats) -> float:
    """IPC of a run relative to the no-prefetch baseline of the same trace."""
    if baseline.ipc == 0:
        return 0.0
    return stats.ipc / baseline.ipc


def speedup_percent(stats: SimStats, baseline: SimStats) -> float:
    return (normalized_ipc(stats, baseline) - 1.0) * 100.0


def percentile_curve(values: Sequence[float]) -> List[float]:
    """Sorted copy — the paper's per-workload S-curves (Figures 7-10)."""
    return sorted(values)


def coverage(stats: SimStats, baseline: SimStats) -> float:
    """Fraction of baseline L1I misses eliminated (Figure 9)."""
    return stats.coverage_vs(baseline)


def accuracy(stats: SimStats) -> float:
    """Useful prefetches over issued prefetches (Figure 10)."""
    return stats.accuracy


def geomean_normalized_ipc(
    per_workload: Mapping[str, SimStats], baselines: Mapping[str, SimStats]
) -> float:
    """Geometric mean of per-workload normalized IPC (Figure 6 metric).

    Workloads with a missing baseline or a zero IPC (faulted / partial
    runs) are skipped and flagged instead of aborting the report.
    """
    ratios = [
        normalized_ipc(stats, baselines[name])
        for name, stats in per_workload.items()
        if name in baselines
    ]
    missing = len(per_workload) - len(ratios)
    if missing:
        warnings.warn(
            f"geomean_normalized_ipc: {missing} workload(s) have no baseline run",
            RuntimeWarning,
            stacklevel=2,
        )
    return robust_geometric_mean(ratios, context="geomean_normalized_ipc")


def category_means(
    per_workload_values: Mapping[str, float], categories: Mapping[str, str]
) -> Dict[str, float]:
    """Arithmetic mean per workload category (Figures 12-15 grouping)."""
    sums: Dict[str, List[float]] = {}
    for name, value in per_workload_values.items():
        sums.setdefault(categories[name], []).append(value)
    return {cat: sum(vals) / len(vals) for cat, vals in sums.items()}
