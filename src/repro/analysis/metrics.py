"""Aggregate metrics used by the paper's figures."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.sim.stats import SimStats


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises ValueError on non-positive inputs."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized_ipc(stats: SimStats, baseline: SimStats) -> float:
    """IPC of a run relative to the no-prefetch baseline of the same trace."""
    if baseline.ipc == 0:
        return 0.0
    return stats.ipc / baseline.ipc


def speedup_percent(stats: SimStats, baseline: SimStats) -> float:
    return (normalized_ipc(stats, baseline) - 1.0) * 100.0


def percentile_curve(values: Sequence[float]) -> List[float]:
    """Sorted copy — the paper's per-workload S-curves (Figures 7-10)."""
    return sorted(values)


def coverage(stats: SimStats, baseline: SimStats) -> float:
    """Fraction of baseline L1I misses eliminated (Figure 9)."""
    return stats.coverage_vs(baseline)


def accuracy(stats: SimStats) -> float:
    """Useful prefetches over issued prefetches (Figure 10)."""
    return stats.accuracy


def geomean_normalized_ipc(
    per_workload: Mapping[str, SimStats], baselines: Mapping[str, SimStats]
) -> float:
    """Geometric mean of per-workload normalized IPC (Figure 6 metric)."""
    ratios = [
        normalized_ipc(stats, baselines[name]) for name, stats in per_workload.items()
    ]
    return geometric_mean(ratios)


def category_means(
    per_workload_values: Mapping[str, float], categories: Mapping[str, str]
) -> Dict[str, float]:
    """Arithmetic mean per workload category (Figures 12-15 grouping)."""
    sums: Dict[str, List[float]] = {}
    for name, value in per_workload_values.items():
        sums.setdefault(categories[name], []).append(value)
    return {cat: sum(vals) / len(vals) for cat, vals in sums.items()}
