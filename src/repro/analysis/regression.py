"""Benchmark-regression sentinel over the ``BENCH_throughput.json`` trajectory.

``benchmarks/test_perf_throughput.py`` appends one record per run to the
trajectory file; until now the trajectory was written but never *read*.
This module closes the loop: :func:`check_trajectory` compares the
newest record against a robust baseline (the median of up to ``window``
prior records, per ``(config, workload, backend)`` triple — like-backend
comparisons only) and reports three classes of finding:

* **throughput regressions** — ``instrs_per_sec`` dropped by at least
  ``threshold`` (default 30%) against the baseline median.  Medians
  absorb the one-off noise of loaded CI machines; a real slowdown moves
  every subsequent record.
* **drifts** — the newest record's ``cycles`` or ``instructions``
  differ from the most recent prior record for the same pair.  The
  bench suite is fixed and the simulator deterministic, so *any* drift
  means simulated behaviour changed: a correctness alarm, not noise.
  An intentional behaviour change (a modeling fix) acknowledges the
  alarm with ``repro bench-check --allow-cycle-drift`` for one run.
* **speedup-gate failures** — with ``--require-speedup BACKEND:FACTOR``
  the newest record's per-backend geomean ``speedup_vs_reference`` must
  reach the required factor.  Unlike the history-based checks this
  gates even the very first trajectory record, so CI enforces the fast
  backends' raison d'être from day one.

The trajectory file itself is versioned from this PR on
(:data:`TRAJECTORY_SCHEMA_VERSION`) and capped at
:data:`DEFAULT_RETENTION` entries so it stops growing unboundedly;
legacy bare-list files load transparently and upgrade on the next
append.
"""

from __future__ import annotations

import json
import logging
import math
import os
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Dict, List, Optional, Tuple

from repro.check.artifacts import atomic_write_json

logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_RETENTION",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "Finding",
    "SentinelReport",
    "TRAJECTORY_SCHEMA_VERSION",
    "check_trajectory",
    "load_trajectory",
    "parse_speedup_requirements",
    "retention_from_env",
    "save_trajectory",
]

#: Bumped whenever the record shape changes; the loader accepts the
#: legacy bare-list format (schema 1, implicit) and this version.
TRAJECTORY_SCHEMA_VERSION = 2

#: Entries kept in the trajectory file (oldest dropped beyond this).
DEFAULT_RETENTION = 50

#: Prior entries the baseline median may draw from.
DEFAULT_WINDOW = 10

#: Fractional ``instrs_per_sec`` drop that counts as a regression.
DEFAULT_THRESHOLD = 0.30

#: Synthetic pair name for the whole-suite aggregate throughput check.
AGGREGATE = "(aggregate)"


def retention_from_env(default: int = DEFAULT_RETENTION) -> int:
    raw = os.environ.get("REPRO_BENCH_KEEP")
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_KEEP must be a positive integer, got {raw!r}"
        ) from None
    return max(1, value)


# ---------------------------------------------------------------------------
# trajectory I/O
# ---------------------------------------------------------------------------


def parse_trajectory(data: Any) -> List[Dict[str, Any]]:
    """Entries from either trajectory shape; raises ValueError otherwise."""
    if isinstance(data, list):
        return [e for e in data if isinstance(e, dict)]  # legacy bare list
    if isinstance(data, dict):
        version = data.get("schema_version")
        entries = data.get("entries")
        if version == TRAJECTORY_SCHEMA_VERSION and isinstance(entries, list):
            return [e for e in entries if isinstance(e, dict)]
        raise ValueError(
            f"unsupported trajectory schema_version {version!r} "
            f"(this tool reads {TRAJECTORY_SCHEMA_VERSION} and legacy lists)"
        )
    raise ValueError(f"unrecognized trajectory shape: {type(data).__name__}")


def load_trajectory(path: str, tolerant: bool = False) -> List[Dict[str, Any]]:
    """Entries at ``path``; [] when missing; ValueError when unreadable.

    With ``tolerant=True`` a corrupt or torn file is logged and treated
    as empty instead of raising, so an appender (the bench suite) can
    start a fresh trajectory rather than abort.  The strict default is
    what the gate (``repro bench-check``) wants: corruption there must
    be surfaced, not silently waved through.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
        return parse_trajectory(data)
    except FileNotFoundError:
        return []
    except (OSError, json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        if tolerant:
            logger.warning(
                "trajectory %s is unreadable (%s); starting fresh", path, exc
            )
            return []
        raise ValueError(f"trajectory {path} is unreadable: {exc}") from None


def save_trajectory(
    path: str,
    entries: List[Dict[str, Any]],
    retention: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Write entries in the v2 envelope, keeping only the newest ``retention``.

    Atomic (tmp + ``os.replace``) so a crash mid-write cannot truncate
    the trajectory.  Returns the entries actually written.
    """
    keep = retention if retention is not None else retention_from_env()
    kept = entries[-keep:]
    payload = {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "max_entries": keep,
        "entries": kept,
    }
    atomic_write_json(path, payload)
    return kept


# ---------------------------------------------------------------------------
# the sentinel
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    """One comparison that tripped the sentinel."""

    kind: str  # "throughput" | "cycle_drift" | "instruction_drift" | "speedup"
    config: str
    workload: str
    baseline: float
    current: float
    #: Simulator backend of the compared runs; pre-backend trajectory
    #: records (no ``backend`` field) are implicitly "reference".
    backend: str = "reference"

    @property
    def delta(self) -> float:
        """Fractional change vs. baseline (negative = got worse/slower)."""
        if self.baseline == 0:
            return 0.0
        return (self.current - self.baseline) / self.baseline

    def describe(self) -> str:
        pair = f"{self.config}/{self.workload}".rstrip("/")
        if self.backend != "reference":
            pair = f"{pair}@{self.backend}"
        if self.kind == "speedup":
            return (
                f"SPEEDUP GATE {self.backend}: geomean "
                f"{self.current:.2f}x vs reference, required "
                f">= {self.baseline:.2f}x"
            )
        if self.kind == "throughput":
            return (
                f"REGRESSION {pair}: instrs_per_sec "
                f"{self.current:,.0f} vs baseline median {self.baseline:,.0f} "
                f"({self.delta:+.1%})"
            )
        metric = "cycles" if self.kind == "cycle_drift" else "instructions"
        return (
            f"DRIFT {pair}: {metric} {self.current:,.0f} vs prior "
            f"{self.baseline:,.0f} — simulated behaviour changed"
        )


@dataclass
class SentinelReport:
    """Outcome of one :func:`check_trajectory` pass."""

    findings: List[Finding] = field(default_factory=list)
    checked: int = 0            # (config, workload) pairs compared
    baseline_entries: int = 0   # prior entries the baseline drew from
    window: int = DEFAULT_WINDOW
    threshold: float = DEFAULT_THRESHOLD
    skipped: List[str] = field(default_factory=list)  # pairs with no history
    #: Pairs whose newest record carried non-numeric metric fields (a torn
    #: or hand-edited trajectory); logged and excluded, never compared.
    malformed: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "throughput"]

    @property
    def drifts(self) -> List[Finding]:
        return [
            f for f in self.findings
            if f.kind not in ("throughput", "speedup")
        ]

    @property
    def speedup_failures(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "speedup"]

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        if self.baseline_entries == 0:
            lines = [
                "bench-check: no prior entries to compare against "
                "(need at least 2 trajectory records)"
            ]
            # Speedup gates apply to the newest record alone, so they
            # still fire (and still fail the check) without history.
            for finding in self.findings:
                lines.append("  " + finding.describe())
            if not self.findings:
                lines[0] += "; nothing to gate"
            return "\n".join(lines)
        lines = [
            f"bench-check: compared newest entry against "
            f"{self.baseline_entries} prior entr"
            f"{'y' if self.baseline_entries == 1 else 'ies'} "
            f"(window {self.window}, threshold {self.threshold:.0%}): "
            f"{self.checked} pairs checked"
        ]
        for finding in self.findings:
            lines.append("  " + finding.describe())
        if self.skipped:
            lines.append(
                f"  (no history for: {', '.join(sorted(self.skipped))})"
            )
        if self.malformed:
            lines.append(
                f"  (malformed records skipped: "
                f"{', '.join(sorted(self.malformed))})"
            )
        if self.ok:
            lines.append("  OK: no throughput regression, no drift")
        return "\n".join(lines)


def _runs_by_pair(
    entry: Dict[str, Any]
) -> Dict[Tuple[str, str, str], Dict[str, Any]]:
    """Newest-wins map of runs keyed by (config, workload, backend).

    Trajectory records that predate the backend field carry no
    ``backend`` key; those runs came from the reference engine, so they
    default to ``"reference"`` and stay comparable with new reference
    runs.  Runs from different backends never compare against each
    other — a staged run being 3x faster than a reference run is the
    point, not a regression signal.
    """
    out: Dict[Tuple[str, str, str], Dict[str, Any]] = {}
    for run in entry.get("runs", []) or []:
        if isinstance(run, dict) and "config" in run and "workload" in run:
            backend = run.get("backend") or "reference"
            out[(run["config"], run["workload"], backend)] = run
    return out


def parse_speedup_requirements(specs: List[str]) -> Dict[str, float]:
    """``["staged:1.8", "numpy:1.5"]`` → ``{"staged": 1.8, "numpy": 1.5}``.

    Raises:
        ValueError: a spec is not ``BACKEND:FACTOR`` with a positive
            numeric factor.
    """
    requirements: Dict[str, float] = {}
    for spec in specs:
        backend, sep, raw_factor = spec.partition(":")
        backend = backend.strip().lower()
        try:
            factor = float(raw_factor.strip())
        except ValueError:
            factor = float("nan")
        if not sep or not backend or not factor > 0:
            raise ValueError(
                f"speedup requirement must be BACKEND:FACTOR with a "
                f"positive factor (e.g. staged:1.8), got {spec!r}"
            ) from None
        requirements[backend] = factor
    return requirements


def _check_speedups(
    newest: Dict[str, Any],
    requirements: Dict[str, float],
    report: "SentinelReport",
) -> None:
    """Gate per-backend geomean speedup_vs_reference in the newest entry.

    A required backend with no runs in the newest record fails the gate
    (current = 0): silently passing because the bench skipped a backend
    would defeat the CI gate's purpose.
    """
    speedups: Dict[str, List[float]] = {}
    for (_, _, backend), run in _runs_by_pair(newest).items():
        if run.get("from_cache"):
            # A cache-served run's wall-clock belongs to the original
            # simulation (possibly another backend); its "speedup" is
            # fiction and must not enter the gate's geomean.
            continue
        value = run.get("speedup_vs_reference")
        if isinstance(value, (int, float)) and value > 0:
            speedups.setdefault(backend, []).append(float(value))
    for backend, required in sorted(requirements.items()):
        values = speedups.get(backend, [])
        geomean = (
            math.exp(sum(math.log(v) for v in values) / len(values))
            if values else 0.0
        )
        report.checked += 1
        if geomean < required:
            report.findings.append(
                Finding(
                    "speedup", "", "", required, geomean, backend=backend
                )
            )


def check_trajectory(
    entries: List[Dict[str, Any]],
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
    require_speedups: Optional[Dict[str, float]] = None,
) -> SentinelReport:
    """Compare the newest entry against the prior-window baseline.

    Throughput: per (config, workload, backend) triple, the newest
    ``instrs_per_sec`` must not fall ``threshold`` or more below the
    *median* of the triple's values in the prior window — like-backend
    comparisons only, so a fast backend's numbers never mask (or fake)
    a reference regression.  Drift: the newest
    ``cycles``/``instructions`` must equal the triple's values in the
    *most recent* prior entry (older entries may legitimately differ —
    modeling fixes in past PRs changed behaviour once, and the alarm
    fired once, then).  ``require_speedups`` (see
    :func:`parse_speedup_requirements`) additionally gates the newest
    entry's per-backend geomean ``speedup_vs_reference``; unlike the
    history checks it applies even to the first trajectory record.
    """
    report = SentinelReport(window=window, threshold=threshold)
    if entries and require_speedups:
        _check_speedups(entries[-1], require_speedups, report)
    if len(entries) < 2:
        return report
    newest = entries[-1]
    prior = entries[max(0, len(entries) - 1 - window):-1]
    report.baseline_entries = len(prior)

    history: Dict[Tuple[str, str, str], List[Dict[str, Any]]] = {}
    aggregate_history: List[float] = []
    for entry in prior:
        for pair, run in _runs_by_pair(entry).items():
            history.setdefault(pair, []).append(run)
        aggregate = entry.get("aggregate", {})
        if isinstance(aggregate, dict):
            value = aggregate.get("instrs_per_sec")
            if isinstance(value, (int, float)) and value > 0:
                aggregate_history.append(float(value))

    def check_throughput(
        config: str, workload: str, current: Any, baselines: List[Any],
        backend: str = "reference",
    ) -> None:
        values = [v for v in baselines if isinstance(v, (int, float)) and v > 0]
        if not values or not isinstance(current, (int, float)):
            return
        base = median(values)
        if base > 0 and (base - current) / base >= threshold - 1e-9:
            report.findings.append(
                Finding(
                    "throughput", config, workload, base, float(current),
                    backend=backend,
                )
            )

    def numeric_fields_ok(run: Dict[str, Any]) -> bool:
        for key in ("instrs_per_sec", "cycles", "instructions"):
            value = run.get(key)
            if value is not None and not isinstance(value, (int, float)):
                return False
        return True

    for pair, run in sorted(_runs_by_pair(newest).items()):
        config, workload, backend = pair
        label = f"{config}/{workload}"
        if backend != "reference":
            label = f"{label}@{backend}"
        if not numeric_fields_ok(run):
            report.malformed.append(label)
            logger.warning(
                "bench-check: skipping malformed trajectory record for %s "
                "(non-numeric metric field)", label,
            )
            continue
        past = [r for r in history.get(pair, []) if numeric_fields_ok(r)]
        if not past:
            report.skipped.append(label)
            continue
        report.checked += 1
        check_throughput(
            config, workload, run.get("instrs_per_sec"),
            [r.get("instrs_per_sec", 0) or 0 for r in past],
            backend=backend,
        )
        reference = past[-1]
        for field_name, kind in (
            ("cycles", "cycle_drift"),
            ("instructions", "instruction_drift"),
        ):
            current = run.get(field_name)
            expected = reference.get(field_name)
            if (
                current is not None
                and expected is not None
                and current != expected
            ):
                report.findings.append(
                    Finding(
                        kind, config, workload, expected, current,
                        backend=backend,
                    )
                )

    newest_aggregate = newest.get("aggregate", {})
    if isinstance(newest_aggregate, dict) and aggregate_history:
        report.checked += 1
        check_throughput(
            AGGREGATE, "", newest_aggregate.get("instrs_per_sec"),
            aggregate_history,
        )
    return report
