"""Storage-budget accounting for every evaluated configuration (Figure 6
x-axis).  Values come from each prefetcher's own ``storage_bits()``; the
large-L1I baselines are charged the extra SRAM they add over the 32KB
baseline cache."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.prefetchers.registry import make_prefetcher

#: Extra SRAM of the enlarged-cache baselines relative to the 32KB L1I.
_LARGE_L1I_KB = {"l1i_64kb": 32.0, "l1i_96kb": 64.0}


def prefetcher_storage_kb(name: str) -> float:
    """Storage overhead in KB for a registry configuration name."""
    if name in _LARGE_L1I_KB:
        return _LARGE_L1I_KB[name]
    return make_prefetcher(name).storage_kb


def storage_table(names: List[str]) -> List[Tuple[str, float]]:
    """(name, KB) rows sorted by budget."""
    rows = [(name, prefetcher_storage_kb(name)) for name in names]
    rows.sort(key=lambda row: row[1])
    return rows


def paper_reference_storage_kb() -> Dict[str, float]:
    """The storage budgets the paper reports (Section IV-B), for cross-checks."""
    return {
        "next_line": 0.0,
        "sn4l": 2.06,
        "mana_2k": 9.0,
        "mana_4k": 17.25,
        "mana_8k": 74.18,
        "rdip": 63.0,
        "djolt": 125.0,
        "fnl_mma": 97.0,
        "epi": 127.9,
        "entangling_2k": 20.87,
        "entangling_4k": 40.74,
        "entangling_8k": 77.44,
        "entangling_2k_phys": 16.59,
        "entangling_4k_phys": 32.21,
        "entangling_8k_phys": 63.40,
    }
