"""Experiment drivers: run suites of workloads across prefetcher configs.

These are the building blocks the per-figure benchmarks assemble.  Traces
and their preprocessed fetch units are generated once per process and
shared across prefetcher configurations (the trace is read-only).

Configuration names accepted everywhere are the
:mod:`repro.prefetchers.registry` names plus two pseudo-configurations:
``l1i_64kb`` and ``l1i_96kb``, which run the no-prefetch baseline with an
enlarged L1I (the paper's alternative use of the storage budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.prefetchers.base import InstructionPrefetcher, NullPrefetcher
from repro.prefetchers.registry import make_prefetcher
from repro.sim.config import SimConfig
from repro.sim.fetchunits import FetchUnit, build_fetch_units
from repro.sim.simulator import SimResult, simulate
from repro.sim.stats import SimStats
from repro.workloads.generators import WorkloadSpec, cvp_suite, make_workload
from repro.workloads.trace import Trace

PSEUDO_CONFIGS = ("l1i_64kb", "l1i_96kb")


@lru_cache(maxsize=256)
def _cached_workload(spec: WorkloadSpec) -> Trace:
    return make_workload(spec)


@lru_cache(maxsize=256)
def _cached_units(spec: WorkloadSpec, line_size: int) -> Tuple[FetchUnit, ...]:
    return tuple(build_fetch_units(_cached_workload(spec), line_size))


def resolve_config(name: str, base: SimConfig) -> Tuple[InstructionPrefetcher, SimConfig]:
    """Map a configuration name to (prefetcher instance, simulator config)."""
    if name == "l1i_64kb":
        return NullPrefetcher(), base.with_l1i_kb(64)
    if name == "l1i_96kb":
        return NullPrefetcher(), base.with_l1i_kb(96)
    prefetcher = make_prefetcher(name)
    if name.endswith("_phys"):
        return prefetcher, base.with_physical_addresses()
    return prefetcher, base


@dataclass
class EvaluationResult:
    """Results of one suite x configuration-set evaluation."""

    #: config name -> workload name -> SimResult
    runs: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)
    #: workload name -> category
    categories: Dict[str, str] = field(default_factory=dict)

    def stats(self, config: str, workload: str) -> SimStats:
        return self.runs[config][workload].stats

    def workloads(self) -> List[str]:
        return sorted(self.categories)

    def configs(self) -> List[str]:
        return list(self.runs)

    def normalized_ipc(self, config: str, baseline: str = "no") -> Dict[str, float]:
        """Per-workload IPC normalized to the given baseline config."""
        out: Dict[str, float] = {}
        for workload, result in self.runs[config].items():
            base = self.runs[baseline][workload].stats
            out[workload] = result.stats.ipc / base.ipc if base.ipc else 0.0
        return out

    def geomean_speedup(self, config: str, baseline: str = "no") -> float:
        from repro.analysis.metrics import geometric_mean

        ratios = list(self.normalized_ipc(config, baseline).values())
        return geometric_mean(ratios)

    def coverage(self, config: str, baseline: str = "no") -> Dict[str, float]:
        out: Dict[str, float] = {}
        for workload, result in self.runs[config].items():
            base = self.runs[baseline][workload].stats
            out[workload] = result.stats.coverage_vs(base)
        return out

    def accuracy(self, config: str) -> Dict[str, float]:
        return {
            workload: result.stats.accuracy
            for workload, result in self.runs[config].items()
        }

    def miss_ratio(self, config: str) -> Dict[str, float]:
        return {
            workload: result.stats.l1i_miss_ratio
            for workload, result in self.runs[config].items()
        }


#: Default warm-up: the fraction of each trace spent warming caches and
#: prefetcher state before measurement begins (the paper warms for 20M
#: instructions before running its traces to the end).
WARMUP_FRACTION = 0.4


def run_prefetcher_on_suite(
    specs: Sequence[WorkloadSpec],
    config_name: str,
    base_config: Optional[SimConfig] = None,
    warmup_instructions: Optional[int] = None,
) -> Dict[str, SimResult]:
    """Run one configuration over a suite; fresh prefetcher per workload.

    ``warmup_instructions=None`` warms up for ``WARMUP_FRACTION`` of each
    trace; pass 0 to measure from a cold start.
    """
    base = base_config or SimConfig()
    results: Dict[str, SimResult] = {}
    for spec in specs:
        prefetcher, sim_config = resolve_config(config_name, base)
        trace = _cached_workload(spec)
        units = _cached_units(spec, sim_config.line_size)
        warmup = warmup_instructions
        if warmup is None:
            warmup = int(spec.n_instructions * WARMUP_FRACTION)
        result = simulate(
            trace,
            prefetcher,
            config=sim_config,
            units=units,
            warmup_instructions=warmup,
        )
        results[spec.name] = result
    return results


def run_suite(
    specs: Sequence[WorkloadSpec],
    config_names: Sequence[str],
    base_config: Optional[SimConfig] = None,
    warmup_instructions: Optional[int] = None,
    include_baseline: bool = True,
) -> EvaluationResult:
    """Run a set of configurations over a suite of workloads."""
    names = list(config_names)
    if include_baseline and "no" not in names:
        names.insert(0, "no")
    evaluation = EvaluationResult()
    evaluation.categories = {spec.name: spec.category for spec in specs}
    for name in names:
        evaluation.runs[name] = run_prefetcher_on_suite(
            specs, name, base_config, warmup_instructions
        )
    return evaluation


def default_suite(
    per_category: int = 2, n_instructions: Optional[int] = None
) -> List[WorkloadSpec]:
    """The suite benchmarks use by default (scaled down for wall-clock).

    Set the ``REPRO_SUITE_SCALE`` environment variable to multiply the
    per-category workload count (e.g. ``REPRO_SUITE_SCALE=3`` runs 6 per
    category, matching the full evaluation in EXPERIMENTS.md).
    """
    import os

    scale = int(os.environ.get("REPRO_SUITE_SCALE", "1"))
    return cvp_suite(
        per_category=per_category * max(1, scale), n_instructions=n_instructions
    )
