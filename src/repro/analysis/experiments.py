"""Experiment drivers: run suites of workloads across prefetcher configs.

These are the building blocks the per-figure benchmarks assemble.  Traces
and their preprocessed fetch units are generated once per process and
shared across prefetcher configurations (the trace is read-only).

Configuration names accepted everywhere are the
:mod:`repro.prefetchers.registry` names plus two pseudo-configurations:
``l1i_64kb`` and ``l1i_96kb``, which run the no-prefetch baseline with an
enlarged L1I (the paper's alternative use of the storage budget).
"""

from __future__ import annotations

import logging
import os
import sys
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.checkpoint import CheckpointManifest, get_checkpoint
from repro.analysis.runcache import RunCache, get_run_cache, run_key
from repro.check import sanitizer_from_env
from repro.obs.profiler import stage

logger = logging.getLogger(__name__)

if TYPE_CHECKING:
    from repro.analysis.parallel import FaultReport, RetryPolicy
from repro.prefetchers.base import InstructionPrefetcher, NullPrefetcher
from repro.prefetchers.registry import make_prefetcher
from repro.sim.config import SimConfig
from repro.sim.fetchunits import FetchUnit, build_fetch_units
from repro.sim.simulator import SimResult, simulate
from repro.sim.stats import SimStats
from repro.workloads.generators import WorkloadSpec, cvp_suite, make_workload
from repro.workloads.trace import Trace

PSEUDO_CONFIGS = ("l1i_64kb", "l1i_96kb")

#: Sentinel for "use the process-wide default run cache".
DEFAULT_CACHE = "default"

#: Type accepted by the ``cache`` parameters below: an explicit
#: :class:`RunCache`, ``None`` (no caching), or :data:`DEFAULT_CACHE`.
CacheArg = Union[RunCache, None, str]

#: Sentinel for "use the process-wide default checkpoint manifest" (which
#: is itself None unless a driver installed one via ``set_checkpoint``).
DEFAULT_CHECKPOINT = "default"

#: Type accepted by the ``checkpoint`` parameters below.
CheckpointArg = Union[CheckpointManifest, None, str]


def positive_env_int(name: str, default: int) -> int:
    """Parse an environment variable as a positive integer.

    Unset/empty falls back to ``default``; values below 1 clamp to 1 (a
    scale or job count can never be smaller); anything non-integer raises
    a ``ValueError`` naming the variable instead of a bare parse error.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be a positive integer, got {raw!r} "
            f"(e.g. {name}=2)"
        ) from None
    return max(1, value)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count: explicit argument, else ``REPRO_JOBS``, else 1.

    0 or negative values (either source) clamp to 1 — serial execution.
    """
    if jobs is None:
        return positive_env_int("REPRO_JOBS", 1)
    return max(1, int(jobs))


def _resolve_cache(cache: CacheArg) -> Optional[RunCache]:
    if cache == DEFAULT_CACHE:
        return get_run_cache()
    return cache


def _resolve_checkpoint(checkpoint: CheckpointArg) -> Optional[CheckpointManifest]:
    if checkpoint == DEFAULT_CHECKPOINT:
        return get_checkpoint()
    return checkpoint


@lru_cache(maxsize=256)
def _cached_workload(spec: WorkloadSpec) -> Trace:
    return make_workload(spec)


@lru_cache(maxsize=256)
def _cached_units(spec: WorkloadSpec, line_size: int) -> Tuple[FetchUnit, ...]:
    return tuple(build_fetch_units(_cached_workload(spec), line_size))


def resolve_config(name: str, base: SimConfig) -> Tuple[InstructionPrefetcher, SimConfig]:
    """Map a configuration name to (prefetcher instance, simulator config)."""
    if name == "l1i_64kb":
        return NullPrefetcher(), base.with_l1i_kb(64)
    if name == "l1i_96kb":
        return NullPrefetcher(), base.with_l1i_kb(96)
    prefetcher = make_prefetcher(name)
    if name.endswith("_phys"):
        return prefetcher, base.with_physical_addresses()
    return prefetcher, base


@dataclass
class EvaluationResult:
    """Results of one suite x configuration-set evaluation.

    The fault-tolerant executor always returns a *complete or explicitly
    partial* result: pairs whose task failed every attempt are absent
    from ``runs`` and listed in ``faults.quarantined`` — check
    :meth:`is_complete` / :meth:`missing_pairs` before aggregating.
    """

    #: config name -> workload name -> SimResult
    runs: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)
    #: workload name -> category
    categories: Dict[str, str] = field(default_factory=dict)
    #: executor fault telemetry (None when the serial legacy path ran)
    faults: Optional["FaultReport"] = None

    def stats(self, config: str, workload: str) -> SimStats:
        return self.runs[config][workload].stats

    def is_complete(self) -> bool:
        """True when every (config, workload) pair produced a result."""
        return not self.missing_pairs()

    def missing_pairs(self) -> List[Tuple[str, str]]:
        """Quarantined (config, workload) pairs absent from ``runs``."""
        return [
            (config, workload)
            for config, per_workload in self.runs.items()
            for workload in self.categories
            if workload not in per_workload
        ]

    def workloads(self) -> List[str]:
        return sorted(self.categories)

    def configs(self) -> List[str]:
        return list(self.runs)

    def normalized_ipc(self, config: str, baseline: str = "no") -> Dict[str, float]:
        """Per-workload IPC normalized to the given baseline config.

        Workloads whose baseline run is missing (quarantined by the
        fault-tolerant executor) report 0.0 — downstream geomeans skip
        and flag zeros instead of crashing.
        """
        out: Dict[str, float] = {}
        baseline_runs = self.runs.get(baseline, {})
        for workload, result in self.runs[config].items():
            base = baseline_runs.get(workload)
            if base is None or not base.stats.ipc:
                out[workload] = 0.0
            else:
                out[workload] = result.stats.ipc / base.stats.ipc
        return out

    def geomean_speedup(self, config: str, baseline: str = "no") -> float:
        """Geomean of normalized IPC, skipping-and-flagging faulted pairs."""
        from repro.analysis.metrics import robust_geometric_mean

        ratios = list(self.normalized_ipc(config, baseline).values())
        if not ratios:
            return 0.0
        return robust_geometric_mean(
            ratios, context=f"geomean_speedup({config!r})"
        )

    def coverage(self, config: str, baseline: str = "no") -> Dict[str, float]:
        out: Dict[str, float] = {}
        baseline_runs = self.runs.get(baseline, {})
        for workload, result in self.runs[config].items():
            base = baseline_runs.get(workload)
            out[workload] = result.stats.coverage_vs(base.stats) if base else 0.0
        return out

    def accuracy(self, config: str) -> Dict[str, float]:
        return {
            workload: result.stats.accuracy
            for workload, result in self.runs[config].items()
        }

    def miss_ratio(self, config: str) -> Dict[str, float]:
        return {
            workload: result.stats.l1i_miss_ratio
            for workload, result in self.runs[config].items()
        }

    def timing_entries(self) -> List[Tuple[str, str, SimStats]]:
        """(config, workload, stats) triples for the timing telemetry table."""
        return [
            (config, workload, result.stats)
            for config, per_workload in self.runs.items()
            for workload, result in per_workload.items()
        ]


#: Default warm-up: the fraction of each trace spent warming caches and
#: prefetcher state before measurement begins (the paper warms for 20M
#: instructions before running its traces to the end).
WARMUP_FRACTION = 0.4


def resolve_warmup(spec: WorkloadSpec, warmup_instructions: Optional[int]) -> int:
    """The effective warm-up: ``None`` means ``WARMUP_FRACTION`` of the trace."""
    if warmup_instructions is None:
        return int(spec.n_instructions * WARMUP_FRACTION)
    return warmup_instructions


def run_single(
    spec: WorkloadSpec,
    config_name: str,
    base_config: Optional[SimConfig] = None,
    warmup_instructions: Optional[int] = None,
) -> SimResult:
    """Simulate one (configuration, workload) pair with a fresh prefetcher.

    The three pipeline stages (trace construction, fetch-unit
    preprocessing, simulation) report to the installed stage profiler —
    see :func:`repro.obs.profiler.set_stage_profiler` — and are untimed
    no-ops otherwise.

    ``REPRO_SANITIZE=1`` (fatal) / ``REPRO_SANITIZE=report`` (collect)
    attaches the runtime invariant sanitizer (:mod:`repro.check.sanitize`)
    to the simulation; unset, the sanitizer module is never even imported
    and the run is bit-identical.
    """
    base = base_config or SimConfig()
    prefetcher, sim_config = resolve_config(config_name, base)
    with stage("workload_build"):
        trace = _cached_workload(spec)
    with stage("fetch_units"):
        units = _cached_units(spec, sim_config.line_size)
    with stage("simulate"):
        checker = sanitizer_from_env()
        result = simulate(
            trace,
            prefetcher,
            config=sim_config,
            units=units,
            warmup_instructions=resolve_warmup(spec, warmup_instructions),
            checker=checker,
        )
    if checker is not None and checker.violations:
        logger.warning(
            "%s/%s: %s", config_name, spec.name, checker.report().summary_line()
        )
    if checker is not None:
        # Publish the sanitizer report onto the telemetry bus, if one is
        # installed — discovered via sys.modules (never imported), the
        # same zero-cost pattern as _discover_span_recorder.  In a worker
        # this finds the WorkerEventRelay and the report crosses the
        # progress queue; in-process it finds the parent bus directly.
        events_mod = sys.modules.get("repro.obs.events")
        bus = events_mod.get_event_bus() if events_mod is not None else None
        if bus is not None:
            report = checker.report()
            bus.emit(
                "sanitizer",
                config=config_name,
                workload=spec.name,
                cycle=result.stats.cycles,
                payload=report.to_payload(),
            )
    return result


def run_cached(
    spec: WorkloadSpec,
    config_name: str,
    base_config: Optional[SimConfig] = None,
    warmup_instructions: Optional[int] = None,
    cache: CacheArg = DEFAULT_CACHE,
) -> SimResult:
    """Like :func:`run_single`, memoized through the run cache.

    On a hit the returned result is detached (stats only, no live
    prefetcher); on a miss the live result of the fresh simulation is
    returned and a detached copy is stored.
    """
    active = _resolve_cache(cache)
    if active is None:
        return run_single(spec, config_name, base_config, warmup_instructions)
    base = base_config or SimConfig()
    _prefetcher, sim_config = resolve_config(config_name, base)
    key = run_key(
        spec, config_name, sim_config, resolve_warmup(spec, warmup_instructions)
    )
    label = f"{config_name}/{spec.name}"
    hit = active.get(key, label=label)
    if hit is not None:
        return hit
    result = run_single(spec, config_name, base_config, warmup_instructions)
    active.put(key, result, label=label)
    return result


def run_prefetcher_on_suite(
    specs: Sequence[WorkloadSpec],
    config_name: str,
    base_config: Optional[SimConfig] = None,
    warmup_instructions: Optional[int] = None,
    cache: CacheArg = DEFAULT_CACHE,
) -> Dict[str, SimResult]:
    """Run one configuration over a suite; fresh prefetcher per workload.

    ``warmup_instructions=None`` warms up for ``WARMUP_FRACTION`` of each
    trace; pass 0 to measure from a cold start.
    """
    return {
        spec.name: run_cached(
            spec, config_name, base_config, warmup_instructions, cache=cache
        )
        for spec in specs
    }


def _discover_span_recorder() -> Optional[Any]:
    """The process-wide span recorder, *without* importing the span layer.

    The zero-cost contract requires an untraced process to never load
    ``repro.obs.spans``; drivers that want tracing either pass
    ``trace_path`` (explicit opt-in, imports are fine) or install a
    recorder via ``repro.obs.spans.set_span_recorder`` first — in which
    case the module is already in ``sys.modules`` and this lookup finds
    it for free.
    """
    spans_mod = sys.modules.get("repro.obs.spans")
    if spans_mod is None:
        return None
    return spans_mod.get_span_recorder()


def _progress_stream(progress: Union[bool, Any, None]) -> Optional[Any]:
    """Resolve the ``progress`` argument to a stream (or None for off).

    ``None`` defers to the ``REPRO_PROGRESS`` environment variable;
    ``True`` renders to stderr; a file-like object renders to it.
    """
    if progress is None:
        progress = bool(os.environ.get("REPRO_PROGRESS", "").strip())
    if not progress:
        return None
    return progress if hasattr(progress, "write") else sys.stderr


def run_suite(
    specs: Sequence[WorkloadSpec],
    config_names: Sequence[str],
    base_config: Optional[SimConfig] = None,
    warmup_instructions: Optional[int] = None,
    include_baseline: bool = True,
    jobs: Optional[int] = None,
    cache: CacheArg = DEFAULT_CACHE,
    checkpoint: CheckpointArg = DEFAULT_CHECKPOINT,
    retry_policy: Optional["RetryPolicy"] = None,
    trace_path: Optional[str] = None,
    progress: Union[bool, Any, None] = None,
    events_path: Optional[str] = None,
) -> EvaluationResult:
    """Run a set of configurations over a suite of workloads.

    ``jobs`` controls fan-out: ``None`` reads ``REPRO_JOBS`` (default 1 =
    the serial path), values > 1 run one worker process per (config,
    workload) task via :mod:`repro.analysis.parallel`.  Either path
    produces identical stats in identical order; ``cache`` (the process
    default unless overridden) serves repeated pairs without simulating.

    The parallel path is fault tolerant (retries, timeouts, quarantine —
    see :class:`~repro.analysis.parallel.RetryPolicy`): it always returns
    a complete or *explicitly partial* result (``evaluation.faults``,
    ``evaluation.is_complete()``).  ``checkpoint`` (the process default
    unless overridden) records finished pairs in a
    :class:`~repro.analysis.checkpoint.CheckpointManifest` so an
    interrupted evaluation can resume; a non-None checkpoint routes even
    ``jobs=1`` through the fault-tolerant runner (in-process).

    ``trace_path`` writes a merged Chrome trace-event JSON (Perfetto /
    ``chrome://tracing``) of the whole evaluation — suite, cache lookups,
    executor attempts (error-tagged when they failed), retry backoffs and
    worker-side pipeline stages across every worker process.
    ``progress`` (or ``REPRO_PROGRESS=1``) renders a throttled live
    status line from worker heartbeats and flags silent workers before
    the task timeout fires (see ``evaluation.faults.stale_tasks``).

    ``events_path`` (or ``REPRO_EVENTS``) appends every telemetry event
    — suite lifecycle, task starts/heartbeats/finishes, executor
    verdicts, cache hits/misses, sanitizer reports — to a JSONL run
    ledger (see :mod:`repro.obs.events`); a crash/timeout/quarantine
    additionally dumps a flight-recorder artifact next to the ledger,
    linked from ``evaluation.faults.flight_recordings``.  A process bus
    already installed via ``repro.obs.events.set_event_bus`` (the CLI's
    ``--events``/``--metrics-port`` session) is reused instead.

    All three are strictly opt-in: architectural results are
    bit-identical with or without them, and none of the observability
    modules is even imported when its feature is off.
    """
    names = list(config_names)
    if include_baseline and "no" not in names:
        names.insert(0, "no")
    evaluation = EvaluationResult()
    evaluation.categories = {spec.name: spec.category for spec in specs}
    n_jobs = resolve_jobs(jobs)
    active_checkpoint = _resolve_checkpoint(checkpoint)

    recorder: Optional[Any] = None
    collector: Optional[Any] = None
    if trace_path is not None:
        from repro.obs.spans import SpanRecorder

        recorder = SpanRecorder(role="suite")
    else:
        recorder = _discover_span_recorder()
    if recorder is not None:
        from repro.obs.spans import SuiteSpanCollector

        collector = SuiteSpanCollector(recorder)

    # Telemetry bus: an explicit events_path creates (and owns) one; a bus
    # installed via set_event_bus (CLI session) is reused; REPRO_EVENTS is
    # the env fallback.  Discovery goes through sys.modules so a run with
    # no events configured never imports repro.obs.events.
    events_bus: Optional[Any] = None
    owns_bus = False
    if events_path is None:
        events_mod = sys.modules.get("repro.obs.events")
        if events_mod is not None:
            events_bus = events_mod.get_event_bus()
        if events_bus is None:
            events_path = os.environ.get("REPRO_EVENTS", "").strip() or None
    if events_bus is None and events_path is not None:
        from repro.obs.events import open_bus

        events_bus = open_bus(events_path)
        owns_bus = True

    monitor: Optional[Any] = None
    stream = _progress_stream(progress)
    if stream is not None or events_bus is not None:
        # Events ride the heartbeat queue, so a bus forces the monitor
        # (stream may stay None — then nothing is rendered, only sunk).
        from repro.analysis.parallel import resolve_policy
        from repro.obs.heartbeat import (
            HeartbeatMonitor,
            heartbeat_interval_from_env,
            stale_after_from_env,
        )

        interval = heartbeat_interval_from_env()
        monitor = HeartbeatMonitor(
            total=len(names) * len(specs),
            stream=stream,
            stale_after=stale_after_from_env(
                interval, resolve_policy(retry_policy).timeout
            ),
        )

    use_engine = (
        n_jobs > 1
        or active_checkpoint is not None
        or retry_policy is not None
        or collector is not None
        or monitor is not None
    )
    suite_span = (
        recorder.span(
            "suite", cat="suite",
            n_configs=len(names), n_workloads=len(specs), jobs=n_jobs,
        )
        if recorder is not None
        else nullcontext()
    )
    if events_bus is not None:
        events_bus.emit(
            "suite_started",
            payload={
                "n_configs": len(names),
                "n_workloads": len(specs),
                "n_tasks": len(names) * len(specs),
                "jobs": n_jobs,
            },
        )
    try:
        with stage("run_suite"), suite_span:
            if use_engine:
                from repro.analysis.parallel import run_tasks_parallel

                outcome = run_tasks_parallel(
                    specs,
                    names,
                    base_config=base_config,
                    warmup_instructions=warmup_instructions,
                    jobs=n_jobs,
                    cache=_resolve_cache(cache),
                    checkpoint=active_checkpoint,
                    policy=retry_policy,
                    span_collector=collector,
                    monitor=monitor,
                    events_bus=events_bus,
                )
                evaluation.runs = outcome.runs
                evaluation.faults = outcome.report
            else:
                for name in names:
                    evaluation.runs[name] = {}
                    for spec in specs:
                        try:
                            evaluation.runs[name][spec.name] = run_cached(
                                spec, name, base_config, warmup_instructions,
                                cache=cache,
                            )
                        except ValueError as exc:
                            # Bad ingestion input (TraceError, ConfigError,
                            # an unknown workload category, ...): quarantine
                            # the pair instead of killing the whole suite,
                            # mirroring the engine path's fault handling.
                            from repro.analysis.parallel import (
                                FaultReport,
                                TaskFailure,
                            )

                            if evaluation.faults is None:
                                evaluation.faults = FaultReport()
                            evaluation.faults.attempts += 1
                            evaluation.faults.task_errors += 1
                            evaluation.faults.quarantined.append(
                                TaskFailure(
                                    label=f"{name}/{spec.name}",
                                    attempts=1,
                                    error=f"{type(exc).__name__}: {exc}",
                                )
                            )
                            logger.warning(
                                "quarantined %s/%s: %s", name, spec.name, exc
                            )
    finally:
        if events_bus is not None:
            completed = sum(len(per) for per in evaluation.runs.values())
            quarantined = (
                len(evaluation.faults.quarantined)
                if evaluation.faults is not None
                else 0
            )
            try:
                events_bus.emit(
                    "suite_finished",
                    payload={
                        "completed": completed,
                        "quarantined": quarantined,
                    },
                )
            finally:
                if owns_bus:
                    events_bus.close()
    if collector is not None:
        collector.finish()
    if trace_path is not None and recorder is not None:
        from repro.obs.chrometrace import write_chrome_trace

        write_chrome_trace(
            recorder.spans, trace_path,
            process_names=collector.process_names() if collector else None,
        )
    return evaluation


def default_suite(
    per_category: int = 2,
    n_instructions: Optional[int] = None,
    include_microservice: bool = False,
) -> List[WorkloadSpec]:
    """The suite benchmarks use by default (scaled down for wall-clock).

    Set the ``REPRO_SUITE_SCALE`` environment variable to multiply the
    per-category workload count (e.g. ``REPRO_SUITE_SCALE=3`` runs 6 per
    category, matching the full evaluation in EXPERIMENTS.md).  Values
    below 1 clamp to 1; non-integers raise a clear ``ValueError``.

    ``include_microservice`` appends the cloud-microservice suite
    (single-tenant services plus 2-4-tenant mixes) — off by default so
    historical benchmark trajectories keep comparing like with like.
    """
    scale = positive_env_int("REPRO_SUITE_SCALE", 1)
    specs = cvp_suite(
        per_category=per_category * scale, n_instructions=n_instructions
    )
    if include_microservice:
        from repro.workloads.microservice import microservice_suite

        specs = specs + microservice_suite(
            n_instructions=n_instructions or 300_000
        )
    return specs
