"""Resumable evaluations: a checkpoint manifest of finished run keys.

A full paper-scale evaluation is hours of simulation; an interrupted
sweep must not start from zero.  The :class:`CheckpointManifest` is a
small JSON file, rewritten atomically after each completed (config,
workload) pair, recording the run keys (see
:func:`repro.analysis.runcache.run_key`) that finished.  It layers on
the on-disk run cache: the cache holds the *results*, the manifest
records *completion* and exposes counters (``resumed`` / ``resumed_hits``
/ ``marked``) so drivers and tests can assert that a resumed evaluation
re-simulated only the missing pairs.

The manifest is corruption-tolerant: a truncated or schema-mismatched
file loads as empty (logged), never raises — losing a checkpoint only
costs re-simulation, exactly like a cold cache.

``examples/full_evaluation.py --resume`` wires a manifest into the
process-wide slot (:func:`set_checkpoint`), which ``run_suite`` picks up
by default, mirroring the run cache's global.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
from typing import Dict, Optional, Set

logger = logging.getLogger(__name__)

_MANIFEST_FORMAT_VERSION = 1


class CheckpointManifest:
    """Atomic, append-only record of completed run keys.

    ``resume=True`` (default) loads any existing manifest at ``path``;
    ``resume=False`` starts empty and overwrites on the first mark.
    """

    def __init__(self, path: str, resume: bool = True) -> None:
        self.path = path
        #: run key -> {"config": ..., "workload": ...}
        self.done: Dict[str, Dict[str, str]] = {}
        self.marked = 0          # new pairs recorded by this process
        self.resumed_hits = 0    # resumed pairs served without re-simulating
        self._tmp_counter = itertools.count()
        if resume:
            self.done = self._load(path)
        self._resumed_keys: Set[str] = set(self.done)
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    @property
    def resumed(self) -> int:
        """Pairs already recorded as finished when the manifest loaded."""
        return len(self._resumed_keys)

    def __contains__(self, key: str) -> bool:
        return key in self.done

    def __len__(self) -> int:
        return len(self.done)

    def note_hit(self, key: str) -> None:
        """Count a pair that resumption spared from re-simulation."""
        if key in self._resumed_keys:
            self.resumed_hits += 1

    def mark_done(self, key: str, config: str, workload: str) -> None:
        """Record one finished pair and persist the manifest atomically."""
        if key in self.done:
            return
        self.done[key] = {"config": config, "workload": workload}
        self.marked += 1
        self._write()

    def stats_line(self) -> str:
        return (
            f"checkpoint: {len(self.done)} pairs done "
            f"({self.resumed} resumed, {self.resumed_hits} served from "
            f"cache, {self.marked} newly completed) -> {self.path}"
        )

    # -- persistence --------------------------------------------------------

    @staticmethod
    def _load(path: str) -> Dict[str, Dict[str, str]]:
        try:
            with open(path) as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return {}
        except (OSError, ValueError):
            logger.warning(
                "checkpoint manifest %s is unreadable/corrupt; starting fresh",
                path,
            )
            return {}
        if (
            not isinstance(data, dict)
            or data.get("format") != _MANIFEST_FORMAT_VERSION
            or not isinstance(data.get("done"), dict)
        ):
            logger.warning(
                "checkpoint manifest %s has an unknown schema; starting fresh",
                path,
            )
            return {}
        return {
            str(key): {
                "config": str(entry.get("config", "")),
                "workload": str(entry.get("workload", "")),
            }
            for key, entry in data["done"].items()
            if isinstance(entry, dict)
        }

    def _write(self) -> None:
        payload = {"format": _MANIFEST_FORMAT_VERSION, "done": self.done}
        # Unique tmp name per process *and* per write: concurrent writers
        # sharing a manifest directory must never interleave into one tmp
        # file (the same discipline as RunCache._store_disk).
        tmp = (
            f"{self.path}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        )
        try:
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except OSError:
            # Checkpointing is best-effort; an unwritable manifest only
            # costs resumability, never the evaluation itself.
            try:
                os.remove(tmp)
            except OSError:
                pass


_active_checkpoint: Optional[CheckpointManifest] = None


def get_checkpoint() -> Optional[CheckpointManifest]:
    """The process-wide checkpoint manifest, or None (the default)."""
    return _active_checkpoint


def set_checkpoint(
    checkpoint: Optional[CheckpointManifest],
) -> Optional[CheckpointManifest]:
    """Install the process-wide manifest; returns the previous one."""
    global _active_checkpoint
    previous = _active_checkpoint
    _active_checkpoint = checkpoint
    return previous
