"""Resumable evaluations: a checkpoint manifest of finished run keys.

A full paper-scale evaluation is hours of simulation; an interrupted
sweep must not start from zero.  The :class:`CheckpointManifest` records
the run keys (see :func:`repro.analysis.runcache.run_key`) that
finished.  It layers on the on-disk run cache: the cache holds the
*results*, the manifest records *completion* and exposes counters
(``resumed`` / ``resumed_hits`` / ``marked``) so drivers and tests can
assert that a resumed evaluation re-simulated only the missing pairs.

Format v2 is an append-only JSONL: each completed pair is one complete
line written with a single ``os.write`` on an ``O_APPEND`` descriptor —
the same pattern ``repro.obs.events.EventLedger`` uses — which POSIX
serializes in the kernel, so *concurrent resuming processes sharing one
manifest can no longer lose each other's keys* (format v1 rewrote the
whole file per mark: two markers raced rewrite-vs-rewrite and the loser
erased the winner's pairs).  Loading merges every line, tolerating a
torn tail, and still reads whole-file v1 manifests, so existing
checkpoints resume across the upgrade.

The manifest is corruption-tolerant: a truncated or schema-mismatched
file loads as empty (logged), never raises — losing a checkpoint only
costs re-simulation, exactly like a cold cache.

``examples/full_evaluation.py --resume`` wires a manifest into the
process-wide slot (:func:`set_checkpoint`), which ``run_suite`` picks up
by default, mirroring the run cache's global.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import Dict, Optional, Set

logger = logging.getLogger(__name__)

_MANIFEST_FORMAT_VERSION = 2
_LEGACY_FORMAT_VERSION = 1


def _fsfault(path: str) -> None:
    """Chaos seam for manifest appends (zero-cost unless armed)."""
    if (
        "repro.check.fsfault" not in sys.modules
        and not os.environ.get("REPRO_FSFAULT")
    ):
        return
    from repro.check.fsfault import fault_check

    fault_check("append", path, scope="checkpoint")


class CheckpointManifest:
    """Append-only record of completed run keys (JSONL, format v2).

    ``resume=True`` (default) loads and merges any existing manifest at
    ``path`` (v2 JSONL or legacy v1 whole-file JSON); ``resume=False``
    starts empty and truncates on the first mark.
    """

    def __init__(self, path: str, resume: bool = True) -> None:
        self.path = path
        #: run key -> {"config": ..., "workload": ...}
        self.done: Dict[str, Dict[str, str]] = {}
        self.marked = 0          # new pairs recorded by this process
        self.resumed_hits = 0    # resumed pairs served without re-simulating
        self._fd: Optional[int] = None
        self._truncate = not resume
        self._write_failed = False
        if resume:
            self.done = self._load(path)
        self._resumed_keys: Set[str] = set(self.done)
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    @property
    def resumed(self) -> int:
        """Pairs already recorded as finished when the manifest loaded."""
        return len(self._resumed_keys)

    def __contains__(self, key: str) -> bool:
        return key in self.done

    def __len__(self) -> int:
        return len(self.done)

    def note_hit(self, key: str) -> None:
        """Count a pair that resumption spared from re-simulation."""
        if key in self._resumed_keys:
            self.resumed_hits += 1

    def mark_done(self, key: str, config: str, workload: str) -> None:
        """Record one finished pair and append it to the manifest."""
        if key in self.done:
            return
        self.done[key] = {"config": config, "workload": workload}
        self.marked += 1
        self._append(
            {
                "format": _MANIFEST_FORMAT_VERSION,
                "key": key,
                "config": config,
                "workload": workload,
            }
        )

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def stats_line(self) -> str:
        return (
            f"checkpoint: {len(self.done)} pairs done "
            f"({self.resumed} resumed, {self.resumed_hits} served from "
            f"cache, {self.marked} newly completed) -> {self.path}"
        )

    # -- persistence --------------------------------------------------------

    @staticmethod
    def _load(path: str) -> Dict[str, Dict[str, str]]:
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return {}
        except OSError:
            logger.warning(
                "checkpoint manifest %s is unreadable; starting fresh", path
            )
            return {}
        text = raw.decode("utf-8", errors="replace")

        # Whole-file parse first: legacy v1 manifests (and any
        # single-line JSON) land here, including schema rejects.
        try:
            whole = json.loads(text)
        except ValueError:
            whole = None
        if whole is not None:
            done = CheckpointManifest._merge_value(whole, {}, path)
            if done is None:
                logger.warning(
                    "checkpoint manifest %s has an unknown schema; "
                    "starting fresh", path,
                )
                return {}
            return done

        # JSONL (v2, possibly with a legacy v1 first line from before an
        # in-place upgrade): merge every parseable line.  A torn tail —
        # the final line cut mid-write by a crash — is expected damage
        # and silently skipped; any other unparseable line is logged.
        done: Dict[str, Dict[str, str]] = {}
        lines = text.split("\n")
        merged_any = False
        for idx, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                value = json.loads(line)
            except ValueError:
                if all(not rest.strip() for rest in lines[idx + 1 :]):
                    logger.debug(
                        "checkpoint manifest %s has a torn tail; skipped",
                        path,
                    )
                else:
                    logger.warning(
                        "checkpoint manifest %s line %d is corrupt; skipped",
                        path, idx + 1,
                    )
                continue
            merged = CheckpointManifest._merge_value(value, done, path)
            if merged is None:
                logger.warning(
                    "checkpoint manifest %s line %d has an unknown schema; "
                    "skipped", path, idx + 1,
                )
            else:
                merged_any = True
        if not merged_any and lines and any(line.strip() for line in lines):
            logger.warning(
                "checkpoint manifest %s is unreadable/corrupt; starting "
                "fresh", path,
            )
        return done

    @staticmethod
    def _merge_value(
        value: object, done: Dict[str, Dict[str, str]], path: str
    ) -> Optional[Dict[str, Dict[str, str]]]:
        """Merge one parsed JSON value (v1 dict or v2 record) into
        ``done``; None means unrecognized schema."""
        if not isinstance(value, dict):
            return None
        fmt = value.get("format")
        if fmt == _LEGACY_FORMAT_VERSION and isinstance(value.get("done"), dict):
            for key, entry in value["done"].items():
                if isinstance(entry, dict):
                    done[str(key)] = {
                        "config": str(entry.get("config", "")),
                        "workload": str(entry.get("workload", "")),
                    }
            return done
        if fmt == _MANIFEST_FORMAT_VERSION and "key" in value:
            done[str(value["key"])] = {
                "config": str(value.get("config", "")),
                "workload": str(value.get("workload", "")),
            }
            return done
        return None

    def _append(self, record: Dict[str, str]) -> None:
        line = (json.dumps(record) + "\n").encode("utf-8")
        try:
            _fsfault(self.path)
            if self._fd is None:
                flags = os.O_CREAT | os.O_RDWR | os.O_APPEND
                if self._truncate:
                    flags |= os.O_TRUNC
                    self._truncate = False
                self._fd = os.open(self.path, flags, 0o644)
                # A legacy v1 manifest has no trailing newline; start our
                # first appended line on a line of its own or the two
                # records would fuse into one unparseable line.
                size = os.fstat(self._fd).st_size
                if size and os.pread(self._fd, 1, size - 1) != b"\n":
                    line = b"\n" + line
            # One os.write per record: O_APPEND writes are serialized by
            # the kernel, so concurrent resuming processes interleave
            # whole lines, never bytes — no marks are ever lost.
            os.write(self._fd, line)
        except OSError as exc:
            # Checkpointing is best-effort; an unwritable manifest only
            # costs resumability, never the evaluation itself.
            if not self._write_failed:
                self._write_failed = True
                logger.warning(
                    "checkpoint manifest %s is unwritable (%s); marks from "
                    "this process will not persist", self.path, exc,
                )


_active_checkpoint: Optional[CheckpointManifest] = None


def get_checkpoint() -> Optional[CheckpointManifest]:
    """The process-wide checkpoint manifest, or None (the default)."""
    return _active_checkpoint


def set_checkpoint(
    checkpoint: Optional[CheckpointManifest],
) -> Optional[CheckpointManifest]:
    """Install the process-wide manifest; returns the previous one."""
    global _active_checkpoint
    previous = _active_checkpoint
    _active_checkpoint = checkpoint
    return previous
