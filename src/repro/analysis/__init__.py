"""Analysis layer: metrics, the look-ahead oracle, experiment drivers, and
text reporting for every table and figure in the paper's evaluation."""

from repro.analysis.metrics import geometric_mean, normalized_ipc, percentile_curve
from repro.analysis.storage import prefetcher_storage_kb, storage_table
from repro.analysis.oracle import LookaheadOracle, OracleObserver, run_oracle
from repro.analysis.experiments import (
    EvaluationResult,
    resolve_jobs,
    run_cached,
    run_prefetcher_on_suite,
    run_single,
    run_suite,
)
from repro.analysis.checkpoint import (
    CheckpointManifest,
    get_checkpoint,
    set_checkpoint,
)
from repro.analysis.parallel import (
    FaultInjector,
    FaultReport,
    RetryPolicy,
    map_resilient,
)
from repro.analysis.runcache import RunCache, get_run_cache, set_run_cache
from repro.analysis.reporting import format_table, format_timing_table
from repro.analysis.export import (
    export_curves_csv,
    export_evaluation_csv,
    export_pareto_csv,
    export_series_csv,
)
from repro.analysis.sweeps import (
    SweepPoint,
    sweep_entangling_parameter,
    sweep_sim_parameter,
)
from repro.analysis.pareto import (
    crowding_distances,
    dominates,
    nondominated_sort,
    pareto_front_indices,
)
from repro.analysis.tune import (
    GeneticTuner,
    GridTuner,
    RandomTuner,
    TunableParam,
    TuneResult,
    Tuner,
    make_tuner,
)

__all__ = [
    "geometric_mean",
    "normalized_ipc",
    "percentile_curve",
    "prefetcher_storage_kb",
    "storage_table",
    "LookaheadOracle",
    "OracleObserver",
    "run_oracle",
    "EvaluationResult",
    "resolve_jobs",
    "run_cached",
    "run_prefetcher_on_suite",
    "run_single",
    "run_suite",
    "CheckpointManifest",
    "get_checkpoint",
    "set_checkpoint",
    "FaultInjector",
    "FaultReport",
    "RetryPolicy",
    "map_resilient",
    "RunCache",
    "get_run_cache",
    "set_run_cache",
    "format_table",
    "format_timing_table",
    "export_curves_csv",
    "export_evaluation_csv",
    "export_pareto_csv",
    "export_series_csv",
    "SweepPoint",
    "sweep_entangling_parameter",
    "sweep_sim_parameter",
    "crowding_distances",
    "dominates",
    "nondominated_sort",
    "pareto_front_indices",
    "GeneticTuner",
    "GridTuner",
    "RandomTuner",
    "TunableParam",
    "TuneResult",
    "Tuner",
    "make_tuner",
]
