"""The look-ahead oracle behind the paper's motivation Figures 1 and 2.

The paper instruments a no-prefetch baseline: it tracks every L1I miss and
its latency, plus the stream of *discontinuities* (taken branches), and
computes, per miss, how many discontinuities in advance a prefetch would
have to be issued not to be late.  Figure 1 plots, per fixed look-ahead
distance 1-10, the fraction of misses served timely; Figure 2 plots the
accuracy loss from prefetching too early (lines evicted before use).

:class:`OracleObserver` is a passive prefetcher that records the needed
events; :class:`LookaheadOracle` replays them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.prefetchers.base import FillInfo, InstructionPrefetcher, PrefetchRequest
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate
from repro.workloads.trace import BranchType, Trace


class OracleObserver(InstructionPrefetcher):
    """Records miss latencies and taken-branch (discontinuity) events."""

    name = "oracle-observer"

    def __init__(self) -> None:
        # (demand cycle, measured latency, miss line) per demand L1I miss.
        self.misses: List[Tuple[int, int, int]] = []
        # Cycle of every taken branch, in order (monotonically increasing).
        self.discontinuity_times: List[int] = []
        # Target line of each taken branch (parallel to the times list):
        # identifies the discontinuity for the path-divergence model.
        self.discontinuity_targets: List[int] = []

    def on_branch(
        self, pc: int, branch_type: BranchType, taken: bool, target: int, cycle: int
    ) -> Iterable[PrefetchRequest]:
        if taken:
            self.discontinuity_times.append(cycle)
            self.discontinuity_targets.append(target // 64)
        return ()

    def on_fill(self, info: FillInfo) -> Iterable[PrefetchRequest]:
        if info.is_demand and info.demand_cycle is not None:
            self.misses.append((info.demand_cycle, info.latency, info.line_addr))
        return ()


@dataclass
class OracleResult:
    """Replay outcome for one workload."""

    workload: str
    category: str
    #: fraction of misses timely at fixed distance d (Figure 1), d=1..max.
    timely_fraction: Dict[int, float]
    #: fraction of issued prefetches not evicted before use (Figure 2).
    accuracy: Dict[int, float]
    #: histogram of the minimal timely distance per miss.
    min_distance_histogram: Dict[int, int] = field(default_factory=dict)
    total_misses: int = 0


class LookaheadOracle:
    """Replays recorded events at fixed look-ahead distances."""

    def __init__(
        self,
        observer: OracleObserver,
        l1i_lines: int = 512,
        cycles: Optional[int] = None,
        max_distance: int = 10,
    ) -> None:
        self.observer = observer
        self.max_distance = max_distance
        # Estimated mean residency of an L1I line before eviction: capacity
        # divided by the fill rate.  Used to classify too-early prefetches.
        fills = max(1, len(observer.misses))
        total_cycles = cycles or (observer.misses[-1][0] if observer.misses else 1)
        self.lifetime_estimate = max(1.0, l1i_lines * total_cycles / fills)

    def min_distance(self, demand_cycle: int, latency: int) -> int:
        """Minimal discontinuity look-ahead for a timely prefetch.

        A prefetch issued at the d-th previous discontinuity completes by
        ``disc_time + latency``; it is timely when that is at most the
        demand time.  Returns ``max_distance + 1`` when even the oldest
        recorded discontinuity is too recent.
        """
        times = self.observer.discontinuity_times
        # Discontinuities strictly before the demand, newest first.
        end = bisect_left(times, demand_cycle)
        deadline = demand_cycle - latency
        # Number of discontinuities in (deadline, demand): all of them are
        # too recent, so the minimal distance is that count + 1.
        first_ok = bisect_right(times, deadline)
        distance = end - first_ok + 1
        if first_ok == 0 and (end == 0 or times[0] > deadline):
            # No recorded discontinuity is old enough: infeasible within
            # the studied distance range.
            distance = self.max_distance + 1
        # Distances beyond the studied range are all equivalent for the
        # replay, so cap uniformly (keeps min_distance monotone in latency).
        return min(distance, self.max_distance + 1)

    def replay(self, workload: str = "", category: str = "") -> OracleResult:
        misses = self.observer.misses
        times = self.observer.discontinuity_times
        targets = self.observer.discontinuity_targets
        histogram: Dict[int, int] = {}
        timely_counts = {d: 0 for d in range(1, self.max_distance + 1)}
        issued = {d: 0 for d in range(1, self.max_distance + 1)}
        wrong = {d: 0 for d in range(1, self.max_distance + 1)}
        # Path-divergence model (the dominant accuracy loss at long
        # look-ahead): a look-ahead-d prefetcher triggered at discontinuity
        # D predicts "the miss that followed D by d discontinuities last
        # time".  Its accuracy is how repeatable that association is.
        predictions: Dict[Tuple[int, int], Dict[int, int]] = {}

        for demand_cycle, latency, line in misses:
            min_d = self.min_distance(demand_cycle, latency)
            histogram[min_d] = histogram.get(min_d, 0) + 1
            end = bisect_left(times, demand_cycle)
            for d in range(1, self.max_distance + 1):
                idx = end - d
                if idx < 0:
                    continue
                issued[d] += 1
                if d >= min_d:
                    timely_counts[d] += 1
                    # Early-arrival margin: time the line sits unused.
                    margin = demand_cycle - (times[idx] + latency)
                    if margin > self.lifetime_estimate:
                        wrong[d] += 1
                observed = predictions.setdefault((targets[idx], d), {})
                observed[line] = observed.get(line, 0) + 1

        total = len(misses)
        timely_fraction = {
            d: (timely_counts[d] / total if total else 0.0)
            for d in range(1, self.max_distance + 1)
        }
        accuracy: Dict[int, float] = {}
        for d in range(1, self.max_distance + 1):
            best = 0
            seen = 0
            for (_target, dist), observed in predictions.items():
                if dist != d:
                    continue
                best += max(observed.values())
                seen += sum(observed.values())
            divergence_acc = best / seen if seen else 1.0
            evict_acc = 1.0 - wrong[d] / issued[d] if issued[d] else 1.0
            accuracy[d] = divergence_acc * evict_acc
        return OracleResult(
            workload=workload,
            category=category,
            timely_fraction=timely_fraction,
            accuracy=accuracy,
            min_distance_histogram=histogram,
            total_misses=total,
        )


def run_oracle(
    trace: Trace,
    config: Optional[SimConfig] = None,
    max_distance: int = 10,
) -> OracleResult:
    """Run the no-prefetch baseline with instrumentation and replay it."""
    observer = OracleObserver()
    result = simulate(trace, observer, config=config)
    oracle = LookaheadOracle(
        observer,
        l1i_lines=(config or SimConfig()).l1i_size // (config or SimConfig()).line_size,
        cycles=result.stats.cycles,
        max_distance=max_distance,
    )
    return oracle.replay(workload=trace.name, category=trace.category)
