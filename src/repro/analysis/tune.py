"""Multi-objective configuration search over the Entangling design space.

The paper fixes one design point per storage budget (Entangling-2K/4K/8K)
and motivates each knob with a one-dimensional sensitivity argument.
This module searches the joint space instead: a *genome* assigns values
to a subset of :class:`~repro.core.entangling.EntanglingConfig` and
:class:`~repro.sim.config.SimConfig` fields (table geometry, history
size, merge distance, confidence width, compression-mode whitelist,
PQ/MSHR sizing), and each genome is scored on several objectives at
once — geomean normalized IPC over a training suite, storage bits from
the first-principles accounting of ``EntanglingPrefetcher.storage_bits``,
and normalized energy from :mod:`repro.energy`.  The output is the
nondominated **Pareto front**, extending the paper's Figure 6
performance-vs-storage frontier with searched (not hand-picked) points.

Three strategies share one :class:`Tuner` interface: ``grid`` (exhaustive
cross product), ``random`` (seeded uniform sampling), and ``genetic``
(NSGA-II-style nondominated sorting + crowding selection with uniform
crossover and per-gene mutation).

Every simulation goes through the run cache keyed by a synthetic config
name ``tuned:<hash>`` derived from the genome (``run_key`` covers only
the config *name* and the :class:`SimConfig`, so the entangling half of
the genome must be folded into the name).  Duplicate genomes — common in
genetic populations — and the shared ``no`` baseline are therefore free,
and with a disk-backed cache plus a
:class:`~repro.analysis.checkpoint.CheckpointManifest` a killed search
resumes without re-simulating any finished genome: the search is
deterministic in its seed, so re-walking the genome sequence turns every
checkpointed run into a disk hit (asserted via the cache/manifest
counters).

Surfaced as ``repro tune`` and ``examples/tune_pareto.py``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
from dataclasses import dataclass, field, replace
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.checkpoint import CheckpointManifest
from repro.analysis.experiments import (
    _cached_units,
    _cached_workload,
    resolve_config,
    resolve_warmup,
    run_cached,
)
from repro.analysis.metrics import robust_geometric_mean
from repro.analysis.pareto import pareto_front_indices
from repro.analysis.runcache import RunCache, _canonical_json, run_key
from repro.analysis.store import LeaseKeeper, await_result, coalesce_enabled
from repro.check.errors import ConfigError
from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher
from repro.energy.model import EnergyModel
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult, simulate
from repro.workloads.generators import WorkloadSpec

logger = logging.getLogger(__name__)

#: Genome-name format version: bump when the encoding (not the values)
#: changes, so stale cache entries become misses instead of mis-serving.
_GENOME_FORMAT_VERSION = 1

#: Genome prefix in run-cache config names (never collides with registry
#: names, which are plain identifiers).
GENOME_PREFIX = "tuned:"


@dataclass(frozen=True)
class TunableParam:
    """One searchable knob: its target config and its discrete values.

    ``kind`` is ``"entangling"`` (an :class:`EntanglingConfig` field) or
    ``"sim"`` (a :class:`SimConfig` field).  Values are discrete because
    every hardware knob here is (entries, ways, bit widths, whitelists);
    continuous parameters would need a different mutation operator.
    """

    name: str
    kind: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("entangling", "sim"):
            raise ValueError(f"unknown param kind {self.kind!r}")
        if not self.values:
            raise ValueError(f"param {self.name!r} has no values")


#: The default search space.  Geometry values are chosen so every
#: (entries, ways) combination yields a power-of-two set count, which
#: ``EntanglingConfig.validate`` requires for the XOR-fold index.
DEFAULT_SPACE: Tuple[TunableParam, ...] = (
    TunableParam("entries", "entangling", (1024, 2048, 4096, 8192)),
    TunableParam("ways", "entangling", (8, 16)),
    TunableParam("history_size", "entangling", (8, 16, 32)),
    TunableParam("merge_distance", "entangling", (None, 5, 6, 15)),
    TunableParam("confidence_bits", "entangling", (1, 2, 3)),
    TunableParam(
        "allowed_modes",
        "entangling",
        (None, (1, 2, 3, 4), (1, 3, 6), (1, 2, 4, 6)),
    ),
    TunableParam("prefetch_queue_size", "sim", (16, 32, 64)),
    TunableParam("l1i_mshrs", "sim", (8, 10, 16)),
)

#: Objective registry: name -> (description, extractor).  Every
#: objective is *minimized* (see repro.analysis.pareto), so maximized
#: quantities are negated in the extractor.
OBJECTIVES = {
    "ipc": (
        "geomean IPC normalized to the no-prefetch baseline (maximized)",
        lambda r: -r.speedup,
    ),
    "storage": (
        "prefetcher storage bits, first-principles accounting (minimized)",
        lambda r: float(r.storage_bits),
    ),
    "energy": (
        "geomean cache-hierarchy energy normalized to baseline (minimized)",
        lambda r: r.energy,
    ),
}


def genome_name(genome: Dict[str, object]) -> str:
    """Stable synthetic config name for one genome (``tuned:<hash>``).

    The run cache keys on (spec, config name, SimConfig, warm-up);
    entangling parameters are invisible to it, so they must be folded
    into the name.  Hashing the canonical sorted-JSON encoding makes the
    name stable across processes and Python versions — the property the
    resume path depends on.
    """
    payload = {"format": _GENOME_FORMAT_VERSION, "genome": genome}
    text = _canonical_json(_canonical_payload(payload))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
    return f"{GENOME_PREFIX}{digest}"


def _canonical_payload(value: object) -> object:
    """JSON-ready form of a genome payload (tuples -> lists, sorted keys)."""
    if isinstance(value, dict):
        return {
            str(k): _canonical_payload(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical_payload(item) for item in value]
    return value


def genome_configs(
    genome: Dict[str, object],
    base_sim: SimConfig,
    space: Sequence[TunableParam] = DEFAULT_SPACE,
) -> Tuple[EntanglingConfig, SimConfig]:
    """Materialize one genome into validated config objects.

    Unset params keep their dataclass defaults (grid searches over a
    sub-space stay honest).  The entangling config mirrors the genome's
    PQ/MSHR sizing into its ``pq_entries`` / ``mshr_entries`` fields so
    the storage objective accounts the metadata of the structures the
    simulation actually models.

    Raises:
        ConfigError: the genome combines structurally invalid values.
    """
    by_kind: Dict[str, Dict[str, object]] = {"entangling": {}, "sim": {}}
    known = {param.name: param.kind for param in space}
    for name, value in genome.items():
        kind = known.get(name)
        if kind is None:
            raise ConfigError(f"genome parameter {name!r} is not in the space")
        by_kind[kind][name] = value
    sim_config = replace(base_sim, **by_kind["sim"])
    ent_config = EntanglingConfig(
        **by_kind["entangling"],
        pq_entries=sim_config.prefetch_queue_size,
        mshr_entries=sim_config.l1i_mshrs,
    )
    ent_config.validate()
    return ent_config, sim_config


def split_suite(
    specs: Sequence[WorkloadSpec], train_fraction: float, seed: int
) -> Tuple[List[WorkloadSpec], List[WorkloadSpec]]:
    """Deterministic train/test split of a workload suite.

    The shuffle is seeded (independent of input order: specs are sorted
    by name first), the training side gets at least one workload, and a
    fraction >= 1 or a single-workload suite makes the test side equal
    to the training side (scored in-sample, flagged by the caller).
    """
    ordered = sorted(specs, key=lambda spec: spec.name)
    if train_fraction >= 1.0 or len(ordered) < 2:
        return ordered, list(ordered)
    rng = Random(seed ^ 0x5EED5)
    shuffled = list(ordered)
    rng.shuffle(shuffled)
    n_train = max(1, min(len(shuffled) - 1, round(len(shuffled) * train_fraction)))
    train = sorted(shuffled[:n_train], key=lambda spec: spec.name)
    test = sorted(shuffled[n_train:], key=lambda spec: spec.name)
    return train, test


@dataclass
class GenomeResult:
    """One evaluated genome and its objective scores."""

    name: str
    genome: Dict[str, object]
    #: geomean normalized IPC over the training suite (vs the ``no``
    #: baseline); 0.0 when every workload failed
    speedup: float = 0.0
    #: geomean normalized energy over the training suite (1.0 = baseline)
    energy: float = 0.0
    storage_bits: int = 0
    #: training workloads skipped (simulation fault or zero-IPC baseline)
    failures: int = 0
    #: geomean normalized IPC over the held-out suite (front points only)
    test_speedup: Optional[float] = None

    @property
    def storage_kb(self) -> float:
        return self.storage_bits / 8192.0

    def objective_vector(self, objectives: Sequence[str]) -> Tuple[float, ...]:
        return tuple(OBJECTIVES[name][1](self) for name in objectives)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "genome": _canonical_payload(self.genome),
            "speedup": self.speedup,
            "test_speedup": self.test_speedup,
            "energy": self.energy,
            "storage_bits": self.storage_bits,
            "storage_kb": self.storage_kb,
            "failures": self.failures,
        }


@dataclass
class TuneResult:
    """Outcome of one search: the front plus audit counters."""

    strategy: str
    seed: int
    objectives: Tuple[str, ...]
    train_workloads: List[str]
    test_workloads: List[str]
    evaluated: int = 0
    invalid: int = 0
    front: List[GenomeResult] = field(default_factory=list)
    cache_line: Optional[str] = None
    checkpoint_line: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "objectives": list(self.objectives),
            "train_workloads": self.train_workloads,
            "test_workloads": self.test_workloads,
            "evaluated": self.evaluated,
            "invalid": self.invalid,
            "front": [result.to_dict() for result in self.front],
        }

    def render(self) -> str:
        """The front as an aligned text table (Figure 6 extension)."""
        from repro.analysis.reporting import format_table

        params = sorted(
            {name for result in self.front for name in result.genome}
        )
        headers = (
            ["point"]
            + params
            + ["speedup", "test", "storage KB", "energy"]
        )
        rows = []
        for result in self.front:
            rows.append(
                [result.name.replace(GENOME_PREFIX, "")[:8]]
                + [_render_value(result.genome.get(p)) for p in params]
                + [
                    f"{result.speedup:.4f}",
                    (
                        f"{result.test_speedup:.4f}"
                        if result.test_speedup is not None
                        else "-"
                    ),
                    f"{result.storage_kb:.1f}",
                    f"{result.energy:.4f}",
                ]
            )
        title = (
            f"Pareto front ({self.strategy}, seed {self.seed}, "
            f"objectives {'/'.join(self.objectives)}): "
            f"{len(self.front)} nondominated of {self.evaluated} evaluated"
        )
        return title + "\n" + format_table(headers, rows)


def _render_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, tuple):
        return ",".join(str(v) for v in value)
    return str(value)


def _genome_worker(task, attempt=0, in_process=False):
    """Simulate one (workload, genome) pair — runs in a worker process."""
    spec, genome, base_sim = task
    ent_config, sim_config = genome_configs(genome, base_sim)
    trace = _cached_workload(spec)
    units = _cached_units(spec, sim_config.line_size)
    result = simulate(
        trace,
        EntanglingPrefetcher(ent_config),
        config=sim_config,
        units=units,
        warmup_instructions=resolve_warmup(spec, None),
    )
    return result.detached()


class Tuner:
    """Shared machinery: genome evaluation, caching, front extraction.

    Subclasses implement :meth:`_search`, returning every evaluated
    :class:`GenomeResult`; :meth:`search` then extracts the nondominated
    front, scores it on the held-out suite, and assembles the
    :class:`TuneResult`.  All randomness flows from ``seed`` through
    ``self.rng`` — two searches with equal arguments produce equal
    results, which is what makes the cache-based resume exact.
    """

    strategy = "base"

    def __init__(
        self,
        specs: Sequence[WorkloadSpec],
        objectives: Sequence[str] = ("ipc", "storage", "energy"),
        space: Sequence[TunableParam] = DEFAULT_SPACE,
        base_config: Optional[SimConfig] = None,
        seed: int = 0,
        train_fraction: float = 0.75,
        cache: Optional[RunCache] = None,
        checkpoint: Optional[CheckpointManifest] = None,
        jobs: int = 1,
    ) -> None:
        if not specs:
            raise ValueError("tuner needs at least one workload spec")
        unknown = [name for name in objectives if name not in OBJECTIVES]
        if unknown:
            raise ValueError(
                f"unknown objectives {unknown}; choose from "
                f"{sorted(OBJECTIVES)}"
            )
        if not objectives:
            raise ValueError("tuner needs at least one objective")
        self.objectives = tuple(objectives)
        self.space = tuple(space)
        self.base_config = base_config or SimConfig()
        self.seed = seed
        self.rng = Random(seed)
        self.train, self.test = split_suite(specs, train_fraction, seed)
        self.cache = cache if cache is not None else RunCache()
        self.checkpoint = checkpoint
        self.jobs = max(1, jobs)
        self.invalid = 0
        self._degradation_warned = False
        self._energy_model = EnergyModel()
        #: genome name -> GenomeResult, in first-evaluation order
        self._results: Dict[str, GenomeResult] = {}

    # -- strategy hook ------------------------------------------------------

    def _search(self) -> None:
        raise NotImplementedError

    def search(self) -> TuneResult:
        """Run the strategy and return the nondominated front."""
        self._search()
        evaluated = list(self._results.values())
        front = self._extract_front(evaluated)
        for result in front:
            result.test_speedup = self._suite_speedup(
                result.genome, self.test
            )[0]
        outcome = TuneResult(
            strategy=self.strategy,
            seed=self.seed,
            objectives=self.objectives,
            train_workloads=[spec.name for spec in self.train],
            test_workloads=[spec.name for spec in self.test],
            evaluated=len(evaluated),
            invalid=self.invalid,
            front=front,
            cache_line=self.cache.stats_line(),
            checkpoint_line=(
                self.checkpoint.stats_line()
                if self.checkpoint is not None
                else None
            ),
        )
        return outcome

    def _extract_front(
        self, evaluated: Sequence[GenomeResult]
    ) -> List[GenomeResult]:
        if not evaluated:
            return []
        points = [r.objective_vector(self.objectives) for r in evaluated]
        indices = pareto_front_indices(points)
        front = [evaluated[i] for i in indices]
        front.sort(key=lambda r: (r.objective_vector(self.objectives), r.name))
        return front

    # -- genome generation --------------------------------------------------

    def random_genome(self, rng: Optional[Random] = None) -> Dict[str, object]:
        rng = rng or self.rng
        return {
            param.name: rng.choice(param.values) for param in self.space
        }

    # -- evaluation ---------------------------------------------------------

    def evaluate(
        self, genomes: Sequence[Dict[str, object]]
    ) -> List[Optional[GenomeResult]]:
        """Score ``genomes`` (deduplicated), using the run cache.

        Returns one entry per input genome, aligned; ``None`` marks a
        structurally invalid genome (counted in ``self.invalid``).
        Workload-level faults degrade the genome's score (``failures``)
        instead of aborting the search.
        """
        prepared: List[Optional[Tuple[str, Dict[str, object]]]] = []
        for genome in genomes:
            name = genome_name(genome)
            if name in self._results:
                prepared.append((name, genome))
                continue
            try:
                genome_configs(genome, self.base_config, self.space)
            except (ConfigError, ValueError) as exc:
                self.invalid += 1
                logger.warning("invalid genome %s skipped: %s", name, exc)
                prepared.append(None)
                continue
            prepared.append((name, genome))
        fresh = {
            name: genome
            for entry in prepared
            if entry is not None
            for name, genome in [entry]
            if name not in self._results
        }
        if fresh:
            self._run_missing(fresh)
            for name, genome in fresh.items():
                self._results[name] = self._score(name, genome)
        return [
            self._results[entry[0]] if entry is not None else None
            for entry in prepared
        ]

    def _tuned_key(self, spec: WorkloadSpec, name: str, genome) -> str:
        _ent, sim_config = genome_configs(genome, self.base_config, self.space)
        return run_key(spec, name, sim_config, resolve_warmup(spec, None))

    def _run_missing(self, fresh: Dict[str, Dict[str, object]]) -> None:
        """Simulate every (training workload, genome) pair not yet cached."""
        # Baselines first: shared across all genomes, usually cached.
        for spec in self.train:
            self._baseline_result(spec)
        tasks: List[Tuple[WorkloadSpec, Dict[str, object], SimConfig]] = []
        keys: List[str] = []
        labels: List[str] = []
        for name, genome in fresh.items():
            for spec in self.train:
                key = self._tuned_key(spec, name, genome)
                if self.cache.get(key) is not None:
                    continue  # _suite_speedup will read (and count) the hit
                tasks.append((spec, genome, self.base_config))
                keys.append(key)
                labels.append(f"{name}/{spec.name}")
        if not tasks:
            return

        # Stampede coalescing across concurrent tuners sharing one cache
        # dir: claim each missing key; keys another live process already
        # owns are *followed* (poll-or-steal) instead of re-simulated.
        # Same protocol as run_tasks_parallel — see repro.analysis.store.
        store = getattr(self.cache, "store", None)
        followed: List[Tuple[Tuple[WorkloadSpec, Dict[str, object], SimConfig],
                             str, str]] = []
        held: List[object] = []
        keeper = None
        if store is not None and coalesce_enabled():
            owned_tasks, owned_keys, owned_labels = [], [], []
            for task, key, label in zip(tasks, keys, labels):
                lease = store.claim(key)
                if lease is None:
                    followed.append((task, key, label))
                    continue
                hit = self.cache.wait_probe(key, label=label)
                if hit is not None:  # published since our get() miss
                    store.release(lease)
                    if self.checkpoint is not None:
                        self.checkpoint.mark_done(
                            key, genome_name(task[1]), task[0].name
                        )
                    continue
                held.append(lease)
                owned_tasks.append(task)
                owned_keys.append(key)
                owned_labels.append(label)
            tasks, keys, labels = owned_tasks, owned_keys, owned_labels
            if held:
                keeper = LeaseKeeper(store, held)
                keeper.start()

        try:
            if self.jobs > 1 and tasks:
                from repro.analysis.parallel import map_resilient

                outcome = map_resilient(
                    _genome_worker, tasks, labels=labels, jobs=self.jobs
                )
                results = outcome.results
            else:
                results = []
                for task, label in zip(tasks, labels):
                    try:
                        results.append(_genome_worker(task))
                    except Exception as exc:  # noqa: BLE001 — degrade per pair
                        logger.warning("tune pair %s failed: %s", label, exc)
                        results.append(None)
            for (spec, genome, _base), key, result in zip(tasks, keys, results):
                if result is None:
                    continue  # quarantined; the genome's score degrades
                self.cache.put(key, result)
                if self.checkpoint is not None:
                    self.checkpoint.mark_done(
                        key, genome_name(genome), spec.name
                    )
            for task, key, label in followed:
                spec, genome, _base = task
                result = None
                while result is None:
                    hit = await_result(self.cache, store, key, label)
                    if hit is not None:
                        result = hit
                        break
                    lease = store.steal(key)
                    if lease is None:
                        continue  # lost the steal race; keep following
                    hit = self.cache.wait_probe(key, label=label)
                    if hit is not None:
                        store.release(lease)
                        result = hit
                        break
                    self.cache.lease_steals += 1
                    try:
                        result = _genome_worker(task)
                    except Exception as exc:  # noqa: BLE001
                        logger.warning("tune pair %s failed: %s", label, exc)
                        store.release(lease)
                        break
                    self.cache.put(key, result)
                    store.release(lease)
                if result is not None and self.checkpoint is not None:
                    self.checkpoint.mark_done(key, genome_name(genome), spec.name)
        finally:
            if keeper is not None:
                keeper.stop()
            if store is not None:
                for lease in held:
                    store.release(lease)
                if store.read_only and not self._degradation_warned:
                    self._degradation_warned = True
                    logger.warning(
                        "shared run store degraded to read-only; tuning "
                        "continues uncached"
                    )

    def _baseline_result(self, spec: WorkloadSpec) -> Optional[SimResult]:
        _prefetcher, sim_config = resolve_config("no", self.base_config)
        key = run_key(spec, "no", sim_config, resolve_warmup(spec, None))
        try:
            result = run_cached(spec, "no", self.base_config, cache=self.cache)
        except ValueError as exc:
            logger.warning("baseline %s failed: %s", spec.name, exc)
            return None
        if self.checkpoint is not None:
            if result.stats.from_cache:
                self.checkpoint.note_hit(key)
            self.checkpoint.mark_done(key, "no", spec.name)
        return result

    def _suite_speedup(
        self, genome: Dict[str, object], specs: Sequence[WorkloadSpec]
    ) -> Tuple[float, float, int]:
        """(geomean speedup, geomean normalized energy, failures).

        Missing pairs simulate on demand (this is how front points get
        their held-out score); everything flows through the cache.
        """
        name = genome_name(genome)
        ratios: List[float] = []
        energies: List[float] = []
        failures = 0
        for spec in specs:
            base = self._baseline_result(spec)
            if base is None or base.stats.ipc <= 0.0:
                failures += 1
                continue
            key = self._tuned_key(spec, name, genome)
            tuned = self.cache.get(key)
            if tuned is None:
                try:
                    fresh = _genome_worker((spec, genome, self.base_config))
                except Exception as exc:  # noqa: BLE001
                    logger.warning(
                        "tune pair %s/%s failed: %s", name, spec.name, exc
                    )
                    failures += 1
                    continue
                self.cache.put(key, fresh)
                if self.checkpoint is not None:
                    self.checkpoint.mark_done(key, name, spec.name)
                tuned = fresh
            elif self.checkpoint is not None:
                self.checkpoint.note_hit(key)
            if tuned.stats.ipc <= 0.0:
                failures += 1
                continue
            ratios.append(tuned.stats.ipc / base.stats.ipc)
            base_energy = self._energy_model.report(base.stats).total_nj
            tuned_energy = self._energy_model.report(tuned.stats).total_nj
            if base_energy > 0:
                energies.append(tuned_energy / base_energy)
        speedup = (
            robust_geometric_mean(ratios, context=f"tune {name}")
            if ratios
            else 0.0
        )
        # A genome with no surviving workloads must be *unfit*, not
        # free: zero energy would make it dominate real designs on the
        # minimized energy axis.
        energy = (
            robust_geometric_mean(energies, context=f"tune energy {name}")
            if energies
            else float("inf")
        )
        return speedup, energy, failures

    def _score(self, name: str, genome: Dict[str, object]) -> GenomeResult:
        speedup, energy, failures = self._suite_speedup(genome, self.train)
        ent_config, _sim = genome_configs(genome, self.base_config, self.space)
        storage = EntanglingPrefetcher(ent_config).storage_bits()
        return GenomeResult(
            name=name,
            genome=dict(genome),
            speedup=speedup,
            energy=energy,
            storage_bits=storage,
            failures=failures,
        )


class GridTuner(Tuner):
    """Exhaustive cross product of the space (optionally capped).

    ``max_evals`` truncates the product in deterministic iteration order
    — the cap is reported, never silent (see ``TuneResult.evaluated``).
    """

    strategy = "grid"

    def __init__(self, *args, max_evals: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_evals = max_evals

    def _search(self) -> None:
        names = [param.name for param in self.space]
        combos = itertools.product(*(param.values for param in self.space))
        if self.max_evals is not None:
            combos = itertools.islice(combos, self.max_evals)
        genomes = [dict(zip(names, combo)) for combo in combos]
        total = 1
        for param in self.space:
            total *= len(param.values)
        if self.max_evals is not None and self.max_evals < total:
            logger.info(
                "grid search capped at %d of %d points", self.max_evals, total
            )
        self.evaluate(genomes)


class RandomTuner(Tuner):
    """Seeded uniform sampling of the space (duplicates are dropped)."""

    strategy = "random"

    def __init__(self, *args, samples: int = 32, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.samples = max(1, samples)

    def _search(self) -> None:
        genomes: List[Dict[str, object]] = []
        seen = set()
        # Bounded proposal loop: a tiny space can exhaust before
        # ``samples`` unique genomes exist.
        for _ in range(self.samples * 20):
            if len(genomes) >= self.samples:
                break
            genome = self.random_genome()
            name = genome_name(genome)
            if name in seen:
                continue
            seen.add(name)
            genomes.append(genome)
        self.evaluate(genomes)


class GeneticTuner(Tuner):
    """NSGA-II-lite: nondominated rank + crowding, tournament selection,
    uniform crossover, per-gene mutation.

    Duplicate offspring cost nothing (the run cache already holds their
    simulations), so no dedup pressure is applied beyond the archive.
    """

    strategy = "genetic"

    def __init__(
        self,
        *args,
        population: int = 12,
        generations: int = 4,
        mutation_rate: Optional[float] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.population = max(2, population)
        self.generations = max(1, generations)
        self.mutation_rate = (
            mutation_rate
            if mutation_rate is not None
            else 1.0 / max(1, len(self.space))
        )

    def _search(self) -> None:
        current = [self.random_genome() for _ in range(self.population)]
        parents = [r for r in self.evaluate(current) if r is not None]
        for _generation in range(1, self.generations):
            children = self._offspring(parents)
            child_results = [
                r for r in self.evaluate(children) if r is not None
            ]
            parents = self._select(parents + child_results)

    def _offspring(
        self, parents: Sequence[GenomeResult]
    ) -> List[Dict[str, object]]:
        if not parents:
            return [self.random_genome() for _ in range(self.population)]
        # Bind the parents' ranking once per generation: tournaments in
        # one brood all compare against the same (rank, crowding) map.
        self._ranking = self._ranked(parents)
        children = []
        for _ in range(self.population):
            a = self._tournament(parents)
            b = self._tournament(parents)
            child = self._crossover(a.genome, b.genome)
            children.append(self._mutate(child))
        return children

    def _ranked(
        self, pool: Sequence[GenomeResult]
    ) -> Dict[str, Tuple[int, float]]:
        """name -> (front rank, -crowding distance); lower is fitter."""
        from repro.analysis.pareto import crowding_distances, nondominated_sort

        points = [r.objective_vector(self.objectives) for r in pool]
        ranking: Dict[str, Tuple[int, float]] = {}
        for rank, front in enumerate(nondominated_sort(points)):
            crowd = crowding_distances(points, front)
            for idx in front:
                ranking[pool[idx].name] = (rank, -crowd[idx])
        return ranking

    def _tournament(self, pool: Sequence[GenomeResult]) -> GenomeResult:
        ranking = self._ranking
        a = self.rng.randrange(len(pool))
        b = self.rng.randrange(len(pool))
        return min(
            (pool[a], pool[b]), key=lambda r: (ranking[r.name], r.name)
        )

    def _crossover(self, a, b) -> Dict[str, object]:
        return {
            param.name: (
                a[param.name] if self.rng.random() < 0.5 else b[param.name]
            )
            for param in self.space
        }

    def _mutate(self, genome: Dict[str, object]) -> Dict[str, object]:
        mutated = dict(genome)
        for param in self.space:
            if self.rng.random() < self.mutation_rate:
                mutated[param.name] = self.rng.choice(param.values)
        return mutated

    def _select(self, pool: Sequence[GenomeResult]) -> List[GenomeResult]:
        unique: Dict[str, GenomeResult] = {}
        for result in pool:
            unique.setdefault(result.name, result)
        merged = list(unique.values())
        ranking = self._ranked(merged)
        merged.sort(key=lambda r: (ranking[r.name], r.name))
        return merged[: self.population]


STRATEGIES = {
    "grid": GridTuner,
    "random": RandomTuner,
    "genetic": GeneticTuner,
}


def make_tuner(strategy: str, *args, **kwargs) -> Tuner:
    """Instantiate a tuner by strategy name.

    Raises:
        ValueError: unknown strategy.
    """
    try:
        cls = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    return cls(*args, **kwargs)
