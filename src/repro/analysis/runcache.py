"""Cross-figure memoization of simulation results.

Every figure in the paper's evaluation is a suite x configuration sweep,
and several figures share (configuration, workload) pairs — the Figure
7-10 curves reuse most of Figure 6's field, Table IV re-runs the same
configurations for energy, and every ``run_suite`` call re-simulates the
``no`` baseline.  Since traces are generated deterministically from a
:class:`~repro.workloads.generators.WorkloadSpec` and the simulator is
deterministic in (trace, configuration), a (spec, config name, resolved
:class:`~repro.sim.config.SimConfig`, warm-up) tuple fully identifies a
run: the :class:`RunCache` memoizes :class:`~repro.sim.simulator.SimResult`
stats under a fingerprint of exactly that tuple.

Cached results are *detached* — they carry the full
:class:`~repro.sim.stats.SimStats` but not the live prefetcher object —
so every consumer that reads only stats (all figure drivers, reporting,
export) works transparently.

Disk entries are version-stamped and checksummed: a truncated file, a
schema from another format version, or a flipped byte is detected on
load, logged, and treated as a miss (re-simulate) — never a crash, never
silently served garbage.  The disk layer itself is the sharded v4
:class:`~repro.analysis.store.ShardedRunStore` (256 fan-out dirs,
size/age eviction, lease-based in-flight coalescing across processes,
read-only degradation on ENOSPC/EIO); legacy flat v2/v3 entries are
served and migrated on first read, so a warm cache survives the layout
change.

The process-wide default cache is enabled unless ``REPRO_RUN_CACHE=0``;
set ``REPRO_RUN_CACHE_DIR`` to also persist results as JSON files so
repeated evaluations across processes skip finished simulations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from typing import Any, Dict, Optional

from repro.analysis.store import ShardedRunStore
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult
from repro.sim.stats import SimStats
from repro.workloads.generators import WorkloadSpec

logger = logging.getLogger(__name__)

#: Version of the *key derivation* (the hashed payload below).  Bumped
#: whenever a change must produce new run keys (old entries become
#: misses).  v3: WorkloadSpec gained trace_file/tenants.
_KEY_FORMAT_VERSION = 3

#: Version of the *disk entry / layout* written by the store.  v4 moved
#: entries into 256 shard directories with eviction and leases (see
#: :mod:`repro.analysis.store`); the entry schema and checksum are
#: unchanged from v2/v3, so existing flat caches are served and migrated
#: in place rather than invalidated — which is exactly why this version
#: is decoupled from the key version above.
_CACHE_FORMAT_VERSION = 4


def _canonical(value: Any) -> Any:
    """JSON-ready canonical form: dataclasses -> sorted field dicts."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        # Sort by the *emitted* key form (str) — plain sorted() raises
        # TypeError on mixed-type keys (e.g. an int-keyed config dict
        # from a tuner genome), and the JSON keys are strings anyway.
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    return value


def _canonical_json(payload: Any) -> str:
    # Canonicalize first: sort_keys alone raises TypeError on mixed-type
    # dict keys, and _canonical is idempotent for already-canonical input.
    return json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))


def run_key(
    spec: WorkloadSpec,
    config_name: str,
    sim_config: SimConfig,
    warmup_instructions: int,
) -> str:
    """Stable fingerprint of one simulation's full identity.

    ``sim_config`` must be the *resolved* configuration (after
    ``resolve_config`` applied pseudo-config/physical adjustments) so the
    same name with different base configs never collides.

    Keys hash a canonical sorted-JSON encoding of the explicit field
    values (not ``repr``), so they are stable across Python versions and
    only change when a field's *value set* actually changes; adding or
    renaming a dataclass field deliberately produces new keys (old
    entries become misses, which is the safe direction).

    ``SimConfig.backend`` is excluded: every backend produces
    bit-identical signatures (enforced by ``tests/test_backends.py``), so
    a result computed by one core must be served to all of them — and a
    backend switch must never invalidate a warm cache.
    """
    config_fields = _canonical(sim_config)
    config_fields.pop("backend", None)
    payload = {
        "format": _KEY_FORMAT_VERSION,
        "spec": _canonical(spec),
        "config_name": config_name,
        "sim_config": config_fields,
        "warmup_instructions": warmup_instructions,
    }
    text = _canonical_json(payload)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


def _entry_checksum(data: Dict[str, Any]) -> str:
    """Checksum of a disk entry's payload (everything but the checksum)."""
    payload = {k: v for k, v in data.items() if k != "checksum"}
    return hashlib.sha256(
        _canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


class RunCache:
    """In-process (optionally on-disk) memo of detached ``SimResult``s.

    ``get``/``put`` count hits, misses, and stores so drivers can assert
    "each unique simulation ran exactly once" and report wall-clock saved
    (the sum of the original runs' ``wall_seconds`` over all hits).
    ``disk_corrupt`` counts entries rejected by the integrity checks.
    """

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self.disk_dir = disk_dir
        #: The shared on-disk half (sharded v4 store with eviction and
        #: leases); None for a purely in-memory cache.
        self.store: Optional[ShardedRunStore] = (
            ShardedRunStore(disk_dir) if disk_dir else None
        )
        self._publisher: Optional[Any] = None
        self._mem: Dict[str, SimResult] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_hits = 0
        self.disk_corrupt = 0
        self.disk_stale = 0
        self.lease_waits = 0
        self.coalesced = 0
        self.lease_steals = 0
        self.wall_seconds_saved = 0.0

    @property
    def publisher(self) -> Optional[Any]:
        """Duck-typed telemetry hook (``repro.obs.events.EventBus``): when
        set, every get/put emits a cache_hit/cache_miss/cache_store event.
        Same zero-cost pattern as the sanitizer's ``checker`` attribute —
        a single ``is None`` check, no imports here, and publish failures
        never disturb the cache.  Propagated to the disk store so
        eviction/degradation events share the bus."""
        return self._publisher

    @publisher.setter
    def publisher(self, value: Optional[Any]) -> None:
        self._publisher = value
        if self.store is not None:
            self.store.publisher = value

    def __len__(self) -> int:
        return len(self._mem)

    # -- lookup / insert ----------------------------------------------------

    def _publish(self, type_: str, key: str, label: str) -> None:
        if self.publisher is None:
            return
        try:
            self.publisher.emit(type_, run=key, label=label)
        except Exception:  # noqa: BLE001 — telemetry never breaks the cache
            logger.debug("cache event publish failed", exc_info=True)

    def get(self, key: str, label: str = "") -> Optional[SimResult]:
        """The cached result for ``key``, or None (counts a hit/miss).

        Returns an independent copy: callers may mutate the stats (e.g.
        ``reset``) without corrupting the cache.  Served copies are
        stamped ``stats.from_cache = True`` (telemetry, signature-
        excluded): their ``wall_seconds`` / ``instrs_per_second`` belong
        to the *original* simulation — possibly another process or even
        another backend, since ``run_key`` ignores the backend field —
        so timing aggregation and speedup gates must skip them.

        ``label`` is pure telemetry provenance (the engine's
        ``config/workload`` task label) attached to published events.
        """
        result = self._mem.get(key)
        if result is None and self.store is not None:
            result = self._load_disk(key)
            if result is not None:
                self._mem[key] = result
                self.disk_hits += 1
        if result is None:
            self.misses += 1
            self._publish("cache_miss", key, label)
            return None
        self.hits += 1
        self.wall_seconds_saved += result.stats.wall_seconds
        served = self._copy(result)
        served.stats.from_cache = True
        self._publish("cache_hit", key, label)
        return served

    def wait_probe(self, key: str, label: str = "") -> Optional[SimResult]:
        """Quiet disk probe for lease followers polling an in-flight key.

        Serves (and counts) a coalesced hit once the owning process has
        published; until then returns None *silently* — no miss counter,
        no cache_miss event — so a follower polling every 200ms does not
        distort cache statistics or flood the ledger.
        """
        if self.store is None:
            return None
        data, status = self.store.load(key)
        if status != "ok":
            return None
        result = self._deserialize(key, data)
        if result is None:
            return None
        self._mem[key] = result
        self.disk_hits += 1
        self.hits += 1
        self.coalesced += 1
        self.wall_seconds_saved += result.stats.wall_seconds
        served = self._copy(result)
        served.stats.from_cache = True
        self._publish("cache_hit", key, label)
        return served

    def put(self, key: str, result: SimResult, label: str = "") -> None:
        """Store a detached copy of ``result`` under ``key``."""
        detached = self._copy(result)
        # The stored truth is never "served from a cache": the stamp is
        # applied per-get, so a round-tripped result cannot smuggle it in.
        detached.stats.from_cache = False
        self._mem[key] = detached
        self.stores += 1
        if self.store is not None:
            self._store_disk(key, detached)
        self._publish("cache_store", key, label)

    def clear(self) -> None:
        """Empty the in-memory cache and reset every counter.

        Disk entries (``disk_dir``) are *not* removed — they remain valid
        and will be re-loaded (counting as disk hits) on the next ``get``.
        """
        self._mem.clear()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_hits = 0
        self.disk_corrupt = 0
        self.disk_stale = 0
        self.lease_waits = 0
        self.coalesced = 0
        self.lease_steals = 0
        self.wall_seconds_saved = 0.0

    def stats_line(self) -> str:
        """One-line summary for timing reports."""
        line = (
            f"run cache: {self.stores} unique simulations, {self.hits} hits "
            f"({self.disk_hits} from disk), {self.misses} misses, "
            f"~{self.wall_seconds_saved:.1f}s of simulation re-use"
        )
        if self.coalesced or self.lease_waits:
            line += (
                f", {self.coalesced} coalesced from concurrent evaluators "
                f"({self.lease_steals} lease steals)"
            )
        if self.disk_corrupt:
            line += f", {self.disk_corrupt} corrupt disk entries rejected"
        if self.store is not None and self.store.read_only:
            line += ", store DEGRADED read-only"
        return line

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _copy(result: SimResult) -> SimResult:
        return SimResult(
            trace_name=result.trace_name,
            category=result.category,
            prefetcher_name=result.prefetcher_name,
            stats=SimStats.from_dict(result.stats.to_dict()),
            prefetcher=None,
        )

    def _load_disk(self, key: str) -> Optional[SimResult]:
        data, status = self.store.load(key)
        if status == "missing":
            return None
        if status == "stale":
            # Another format version is stale-by-definition, not corrupt.
            self.disk_stale += 1
            logger.warning(
                "run cache entry %s has an unknown format version; "
                "re-simulating", key,
            )
            return None
        if status == "corrupt":
            self.disk_corrupt += 1
            logger.warning(
                "run cache entry %s is torn/corrupt; re-simulating", key
            )
            return None
        return self._deserialize(key, data)

    def _deserialize(self, key: str, data: Dict[str, Any]) -> Optional[SimResult]:
        try:
            return SimResult(
                trace_name=data["trace_name"],
                category=data["category"],
                prefetcher_name=data["prefetcher_name"],
                stats=SimStats.from_dict(data["stats"]),
                prefetcher=None,
            )
        except (KeyError, TypeError):
            self.disk_corrupt += 1
            logger.warning(
                "run cache entry %s failed to deserialize; re-simulating", key
            )
            return None

    def _store_disk(self, key: str, result: SimResult) -> None:
        # The store seals the payload (format stamp + checksum) and
        # publishes atomically; persistence stays best-effort — a
        # degraded (read-only) store leaves the in-memory copy standing.
        self.store.publish(
            key,
            {
                "trace_name": result.trace_name,
                "category": result.category,
                "prefetcher_name": result.prefetcher_name,
                "stats": result.stats.to_dict(),
            },
        )


_global_cache: Optional[RunCache] = None


def cache_enabled() -> bool:
    """Whether the process-wide default cache is active."""
    return os.environ.get("REPRO_RUN_CACHE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def get_run_cache() -> Optional[RunCache]:
    """The process-wide cache, or None when disabled."""
    global _global_cache
    if not cache_enabled():
        return None
    if _global_cache is None:
        _global_cache = RunCache(
            disk_dir=os.environ.get("REPRO_RUN_CACHE_DIR") or None
        )
    return _global_cache


def set_run_cache(cache: Optional[RunCache]) -> Optional[RunCache]:
    """Replace the process-wide cache (None re-creates it lazily).

    Returns the previous cache so callers can restore it.
    """
    global _global_cache
    previous = _global_cache
    _global_cache = cache
    return previous
