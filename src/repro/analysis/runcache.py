"""Cross-figure memoization of simulation results.

Every figure in the paper's evaluation is a suite x configuration sweep,
and several figures share (configuration, workload) pairs — the Figure
7-10 curves reuse most of Figure 6's field, Table IV re-runs the same
configurations for energy, and every ``run_suite`` call re-simulates the
``no`` baseline.  Since traces are generated deterministically from a
:class:`~repro.workloads.generators.WorkloadSpec` and the simulator is
deterministic in (trace, configuration), a (spec, config name, resolved
:class:`~repro.sim.config.SimConfig`, warm-up) tuple fully identifies a
run: the :class:`RunCache` memoizes :class:`~repro.sim.simulator.SimResult`
stats under a fingerprint of exactly that tuple.

Cached results are *detached* — they carry the full
:class:`~repro.sim.stats.SimStats` but not the live prefetcher object —
so every consumer that reads only stats (all figure drivers, reporting,
export) works transparently.

Disk entries are version-stamped and checksummed: a truncated file, a
schema from another format version, or a flipped byte is detected on
load, logged, and treated as a miss (re-simulate) — never a crash, never
silently served garbage.  Writers use a unique per-process tmp name so
concurrent sweeps sharing ``REPRO_RUN_CACHE_DIR`` cannot interleave
writes, and ``os.replace`` keeps each publish atomic.

The process-wide default cache is enabled unless ``REPRO_RUN_CACHE=0``;
set ``REPRO_RUN_CACHE_DIR`` to also persist results as JSON files so
repeated evaluations across processes skip finished simulations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import logging
import os
from typing import Any, Dict, Optional

from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult
from repro.sim.stats import SimStats
from repro.workloads.generators import WorkloadSpec

logger = logging.getLogger(__name__)

#: Bumped whenever the key derivation or the disk schema changes; entries
#: written by other versions are treated as misses, never mis-served.
_CACHE_FORMAT_VERSION = 3  # v3: WorkloadSpec gained trace_file/tenants


def _canonical(value: Any) -> Any:
    """JSON-ready canonical form: dataclasses -> sorted field dicts."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        # Sort by the *emitted* key form (str) — plain sorted() raises
        # TypeError on mixed-type keys (e.g. an int-keyed config dict
        # from a tuner genome), and the JSON keys are strings anyway.
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    return value


def _canonical_json(payload: Any) -> str:
    # Canonicalize first: sort_keys alone raises TypeError on mixed-type
    # dict keys, and _canonical is idempotent for already-canonical input.
    return json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))


def run_key(
    spec: WorkloadSpec,
    config_name: str,
    sim_config: SimConfig,
    warmup_instructions: int,
) -> str:
    """Stable fingerprint of one simulation's full identity.

    ``sim_config`` must be the *resolved* configuration (after
    ``resolve_config`` applied pseudo-config/physical adjustments) so the
    same name with different base configs never collides.

    Keys hash a canonical sorted-JSON encoding of the explicit field
    values (not ``repr``), so they are stable across Python versions and
    only change when a field's *value set* actually changes; adding or
    renaming a dataclass field deliberately produces new keys (old
    entries become misses, which is the safe direction).

    ``SimConfig.backend`` is excluded: every backend produces
    bit-identical signatures (enforced by ``tests/test_backends.py``), so
    a result computed by one core must be served to all of them — and a
    backend switch must never invalidate a warm cache.
    """
    config_fields = _canonical(sim_config)
    config_fields.pop("backend", None)
    payload = {
        "format": _CACHE_FORMAT_VERSION,
        "spec": _canonical(spec),
        "config_name": config_name,
        "sim_config": config_fields,
        "warmup_instructions": warmup_instructions,
    }
    text = _canonical_json(payload)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


def _entry_checksum(data: Dict[str, Any]) -> str:
    """Checksum of a disk entry's payload (everything but the checksum)."""
    payload = {k: v for k, v in data.items() if k != "checksum"}
    return hashlib.sha256(
        _canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


class RunCache:
    """In-process (optionally on-disk) memo of detached ``SimResult``s.

    ``get``/``put`` count hits, misses, and stores so drivers can assert
    "each unique simulation ran exactly once" and report wall-clock saved
    (the sum of the original runs' ``wall_seconds`` over all hits).
    ``disk_corrupt`` counts entries rejected by the integrity checks.
    """

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self.disk_dir = disk_dir
        #: Duck-typed telemetry hook (``repro.obs.events.EventBus``): when
        #: set, every get/put emits a cache_hit/cache_miss/cache_store
        #: event.  Same zero-cost pattern as the sanitizer's ``checker``
        #: attribute — a single ``is None`` check, no imports here, and
        #: publish failures never disturb the cache.
        self.publisher: Optional[Any] = None
        self._mem: Dict[str, SimResult] = {}
        self._tmp_counter = itertools.count()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_hits = 0
        self.disk_corrupt = 0
        self.wall_seconds_saved = 0.0
        if disk_dir:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._mem)

    # -- lookup / insert ----------------------------------------------------

    def _publish(self, type_: str, key: str, label: str) -> None:
        if self.publisher is None:
            return
        try:
            self.publisher.emit(type_, run=key, label=label)
        except Exception:  # noqa: BLE001 — telemetry never breaks the cache
            logger.debug("cache event publish failed", exc_info=True)

    def get(self, key: str, label: str = "") -> Optional[SimResult]:
        """The cached result for ``key``, or None (counts a hit/miss).

        Returns an independent copy: callers may mutate the stats (e.g.
        ``reset``) without corrupting the cache.  Served copies are
        stamped ``stats.from_cache = True`` (telemetry, signature-
        excluded): their ``wall_seconds`` / ``instrs_per_second`` belong
        to the *original* simulation — possibly another process or even
        another backend, since ``run_key`` ignores the backend field —
        so timing aggregation and speedup gates must skip them.

        ``label`` is pure telemetry provenance (the engine's
        ``config/workload`` task label) attached to published events.
        """
        result = self._mem.get(key)
        if result is None and self.disk_dir:
            result = self._load_disk(key)
            if result is not None:
                self._mem[key] = result
                self.disk_hits += 1
        if result is None:
            self.misses += 1
            self._publish("cache_miss", key, label)
            return None
        self.hits += 1
        self.wall_seconds_saved += result.stats.wall_seconds
        served = self._copy(result)
        served.stats.from_cache = True
        self._publish("cache_hit", key, label)
        return served

    def put(self, key: str, result: SimResult, label: str = "") -> None:
        """Store a detached copy of ``result`` under ``key``."""
        detached = self._copy(result)
        # The stored truth is never "served from a cache": the stamp is
        # applied per-get, so a round-tripped result cannot smuggle it in.
        detached.stats.from_cache = False
        self._mem[key] = detached
        self.stores += 1
        if self.disk_dir:
            self._store_disk(key, detached)
        self._publish("cache_store", key, label)

    def clear(self) -> None:
        """Empty the in-memory cache and reset every counter.

        Disk entries (``disk_dir``) are *not* removed — they remain valid
        and will be re-loaded (counting as disk hits) on the next ``get``.
        """
        self._mem.clear()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_hits = 0
        self.disk_corrupt = 0
        self.wall_seconds_saved = 0.0

    def stats_line(self) -> str:
        """One-line summary for timing reports."""
        line = (
            f"run cache: {self.stores} unique simulations, {self.hits} hits "
            f"({self.disk_hits} from disk), {self.misses} misses, "
            f"~{self.wall_seconds_saved:.1f}s of simulation re-use"
        )
        if self.disk_corrupt:
            line += f", {self.disk_corrupt} corrupt disk entries rejected"
        return line

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _copy(result: SimResult) -> SimResult:
        return SimResult(
            trace_name=result.trace_name,
            category=result.category,
            prefetcher_name=result.prefetcher_name,
            stats=SimStats.from_dict(result.stats.to_dict()),
            prefetcher=None,
        )

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"{key}.json")

    def _load_disk(self, key: str) -> Optional[SimResult]:
        path = self._disk_path(key)
        try:
            with open(path) as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.disk_corrupt += 1
            logger.warning(
                "run cache entry %s is unreadable/truncated; re-simulating",
                path,
            )
            return None
        if not isinstance(data, dict):
            self.disk_corrupt += 1
            logger.warning(
                "run cache entry %s has an unknown schema; re-simulating", path
            )
            return None
        if data.get("format") != _CACHE_FORMAT_VERSION:
            # Another format version is stale-by-definition, not corrupt.
            logger.warning(
                "run cache entry %s has format %r (want %d); re-simulating",
                path, data.get("format"), _CACHE_FORMAT_VERSION,
            )
            return None
        if data.get("checksum") != _entry_checksum(data):
            self.disk_corrupt += 1
            logger.warning(
                "run cache entry %s failed its checksum; re-simulating", path
            )
            return None
        try:
            return SimResult(
                trace_name=data["trace_name"],
                category=data["category"],
                prefetcher_name=data["prefetcher_name"],
                stats=SimStats.from_dict(data["stats"]),
                prefetcher=None,
            )
        except (KeyError, TypeError):
            self.disk_corrupt += 1
            logger.warning(
                "run cache entry %s failed to deserialize; re-simulating", path
            )
            return None

    def _store_disk(self, key: str, result: SimResult) -> None:
        path = self._disk_path(key)
        data = {
            "format": _CACHE_FORMAT_VERSION,
            "trace_name": result.trace_name,
            "category": result.category,
            "prefetcher_name": result.prefetcher_name,
            "stats": result.stats.to_dict(),
        }
        data["checksum"] = _entry_checksum(data)
        # Unique tmp name per process *and* per write: two sweeps sharing
        # REPRO_RUN_CACHE_DIR must never interleave into one tmp file.
        tmp = f"{path}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        try:
            with open(tmp, "w") as fh:
                json.dump(data, fh)
            os.replace(tmp, path)
        except OSError:
            # Disk persistence is best-effort; the in-memory copy stands.
            try:
                os.remove(tmp)
            except OSError:
                pass


_global_cache: Optional[RunCache] = None


def cache_enabled() -> bool:
    """Whether the process-wide default cache is active."""
    return os.environ.get("REPRO_RUN_CACHE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def get_run_cache() -> Optional[RunCache]:
    """The process-wide cache, or None when disabled."""
    global _global_cache
    if not cache_enabled():
        return None
    if _global_cache is None:
        _global_cache = RunCache(
            disk_dir=os.environ.get("REPRO_RUN_CACHE_DIR") or None
        )
    return _global_cache


def set_run_cache(cache: Optional[RunCache]) -> Optional[RunCache]:
    """Replace the process-wide cache (None re-creates it lazily).

    Returns the previous cache so callers can restore it.
    """
    global _global_cache
    previous = _global_cache
    _global_cache = cache
    return previous
