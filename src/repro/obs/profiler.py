"""Wall-clock phase and stage profiling.

:class:`PhaseProfiler` accumulates seconds and call counts per named
phase.  The simulator uses it to time its four per-cycle phases (fills /
predict / issue / retire); the analysis pipeline uses the process-wide
*stage profiler* slot (:func:`set_stage_profiler`) to time trace
construction, fetch-unit preprocessing and simulation without threading a
profiler argument through every driver.

Profiling is host-side telemetry only: it never touches architectural
state, so a profiled run's ``SimStats.signature()`` equals an unprofiled
run's.  When no profiler is installed the hook sites are a ``None`` check.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

#: The simulator's per-cycle phases, in execution order.
SIM_PHASES = ("fills", "predict", "issue", "retire")


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per phase name."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + calls

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block as one call of ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def wrap(self, name: str, fn: Callable) -> Callable:
        """A callable timing every invocation of ``fn`` under ``name``.

        Used by the simulator to instrument its phase methods only when a
        profiler is attached — the unprofiled loop calls ``fn`` directly.
        """
        perf_counter = time.perf_counter
        seconds = self.seconds
        calls = self.calls
        seconds.setdefault(name, 0.0)
        calls.setdefault(name, 0)

        def timed(*args, **kwargs):
            started = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                seconds[name] += perf_counter() - started
                calls[name] += 1

        return timed

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def snapshot(self) -> Dict[str, float]:
        """Seconds per phase, rounded-trip-safe for JSON telemetry."""
        return dict(self.seconds)

    def merge(self, other: "PhaseProfiler") -> None:
        for name, seconds in other.seconds.items():
            self.add(name, seconds, other.calls.get(name, 0))

    def format(self, title: str = "Phase profile") -> str:
        lines = [title]
        total = self.total_seconds()
        for name in sorted(self.seconds, key=lambda n: -self.seconds[n]):
            seconds = self.seconds[name]
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(
                f"  {name:12s} {seconds:8.3f}s  {share:5.1f}%  "
                f"({self.calls.get(name, 0)} calls)"
            )
        lines.append(f"  {'(total)':12s} {total:8.3f}s")
        return "\n".join(lines)


# -- the process-wide analysis-stage profiler slot -------------------------------

_stage_profiler: Optional[PhaseProfiler] = None


def get_stage_profiler() -> Optional[PhaseProfiler]:
    """The installed analysis-pipeline profiler, or None (the default)."""
    return _stage_profiler


def set_stage_profiler(profiler: Optional[PhaseProfiler]) -> Optional[PhaseProfiler]:
    """Install (or clear, with None) the pipeline stage profiler.

    Returns the previous profiler so callers can restore it.
    """
    global _stage_profiler
    previous = _stage_profiler
    _stage_profiler = profiler
    return previous


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a block against the installed stage profiler, if any."""
    profiler = _stage_profiler
    if profiler is None:
        yield
        return
    with profiler.stage(name):
        yield
