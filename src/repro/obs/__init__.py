"""Observability: tracing, metrics, profiling, spans, heartbeats.

Independent facilities, all strictly opt-in:

* :mod:`repro.obs.tracer` — a ring-buffered, sampling-capable event
  tracer recording each prefetch's lifecycle (requested -> enqueued or
  dropped -> issued -> filled -> useful / late / wrong) plus L1I demand
  accesses, and the :class:`~repro.obs.tracer.TimelinessReport` derived
  from it (the paper's Figure 5/13 style analysis).
* :mod:`repro.obs.registry` — a unified metrics registry turning the
  ``SimStats`` / ``EntanglingStats`` / ``TableStats`` counter dataclasses
  into named, typed metrics with JSON, CSV and Prometheus-text exporters.
* :mod:`repro.obs.profiler` — wall-clock phase profiling for the
  simulator's four phases (fills / predict / issue / retire) and the
  analysis pipeline stages.
* :mod:`repro.obs.spans` / :mod:`repro.obs.chrometrace` — cross-process
  span tracing of the evaluation engine (suite → task → attempt →
  backoff / cache lookup / pipeline stages), merged into Chrome
  trace-event JSON loadable in Perfetto.
* :mod:`repro.obs.heartbeat` — worker progress heartbeats and the
  parent-side live status line + stale-task detection.
* :mod:`repro.obs.events` / :mod:`repro.obs.exporthttp` — the unified
  telemetry event bus (one versioned schema over heartbeat, fault,
  cache and sanitizer signals), the append-only JSONL run ledger, the
  crash flight recorder, and the stdlib HTTP metrics endpoint serving
  live engine gauges as Prometheus text.

Overhead contract: a simulation constructed without a tracer or profiler
executes the exact pre-observability code paths — every hook site is a
single attribute-is-None check — and its ``SimStats.signature()`` is
bit-identical to a process that never imported this package.  The span
and heartbeat submodules are *not* imported here (they resolve lazily
via ``__getattr__``): the analysis layer imports ``repro.obs.profiler``
on every run, and an untraced process must never load the span machinery
(``tests/test_obs.py`` pins this with a subprocess check).
"""

from repro.obs.profiler import (
    PhaseProfiler,
    get_stage_profiler,
    set_stage_profiler,
    stage,
)
from repro.obs.registry import Metric, MetricsRegistry, registry_for_run
from repro.obs.tracer import (
    EVENT_KINDS,
    PrefetchTracer,
    TimelinessReport,
    TraceEvent,
)

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "EventLedger",
    "FlightRecorder",
    "HeartbeatMonitor",
    "Metric",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "PhaseProfiler",
    "PrefetchTracer",
    "Span",
    "SpanRecorder",
    "StatusAggregator",
    "TelemetryEvent",
    "TimelinessReport",
    "TraceEvent",
    "get_stage_profiler",
    "open_bus",
    "read_events",
    "registry_for_run",
    "set_stage_profiler",
    "stage",
    "write_chrome_trace",
]

#: Lazily resolved exports (PEP 562): importing repro.obs must not load
#: the span/heartbeat machinery — the zero-cost contract's subprocess
#: test asserts repro.obs.spans stays out of untraced processes.
_LAZY = {
    "Span": ("repro.obs.spans", "Span"),
    "SpanRecorder": ("repro.obs.spans", "SpanRecorder"),
    "HeartbeatMonitor": ("repro.obs.heartbeat", "HeartbeatMonitor"),
    "write_chrome_trace": ("repro.obs.chrometrace", "write_chrome_trace"),
    "EventBus": ("repro.obs.events", "EventBus"),
    "EventLedger": ("repro.obs.events", "EventLedger"),
    "FlightRecorder": ("repro.obs.events", "FlightRecorder"),
    "StatusAggregator": ("repro.obs.events", "StatusAggregator"),
    "TelemetryEvent": ("repro.obs.events", "TelemetryEvent"),
    "open_bus": ("repro.obs.events", "open_bus"),
    "read_events": ("repro.obs.events", "read_events"),
    "MetricsHTTPServer": ("repro.obs.exporthttp", "MetricsHTTPServer"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
