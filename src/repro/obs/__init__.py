"""Observability: prefetch-lifecycle tracing, metrics, phase profiling.

Three independent facilities, all strictly opt-in:

* :mod:`repro.obs.tracer` — a ring-buffered, sampling-capable event
  tracer recording each prefetch's lifecycle (requested -> enqueued or
  dropped -> issued -> filled -> useful / late / wrong) plus L1I demand
  accesses, and the :class:`~repro.obs.tracer.TimelinessReport` derived
  from it (the paper's Figure 5/13 style analysis).
* :mod:`repro.obs.registry` — a unified metrics registry turning the
  ``SimStats`` / ``EntanglingStats`` / ``TableStats`` counter dataclasses
  into named, typed metrics with JSON, CSV and Prometheus-text exporters.
* :mod:`repro.obs.profiler` — wall-clock phase profiling for the
  simulator's four phases (fills / predict / issue / retire) and the
  analysis pipeline stages.

Overhead contract: a simulation constructed without a tracer or profiler
executes the exact pre-observability code paths — every hook site is a
single attribute-is-None check — and its ``SimStats.signature()`` is
bit-identical to a process that never imported this package.
"""

from repro.obs.profiler import (
    PhaseProfiler,
    get_stage_profiler,
    set_stage_profiler,
    stage,
)
from repro.obs.registry import Metric, MetricsRegistry, registry_for_run
from repro.obs.tracer import (
    EVENT_KINDS,
    PrefetchTracer,
    TimelinessReport,
    TraceEvent,
)

__all__ = [
    "EVENT_KINDS",
    "Metric",
    "MetricsRegistry",
    "PhaseProfiler",
    "PrefetchTracer",
    "TimelinessReport",
    "TraceEvent",
    "get_stage_profiler",
    "registry_for_run",
    "set_stage_profiler",
    "stage",
]
