"""Chrome trace-event JSON rendering of merged span timelines.

Emits the subset of the Trace Event Format that Perfetto and
``chrome://tracing`` load: complete events (``"ph": "X"``) with
microsecond ``ts``/``dur``, grouped into per-``(pid, tid)`` tracks, plus
``process_name`` metadata events so worker processes are labeled.  Error
spans carry ``args.status == "error"`` and a ``cname`` so failed
attempts stand out in the viewer.

Open the written file at https://ui.perfetto.dev (drag and drop) or via
``chrome://tracing`` → Load.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Sequence, Union

from repro.obs.spans import Span

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(
    spans: Sequence[Span],
    process_names: Optional[Dict[int, str]] = None,
    origin: Optional[float] = None,
) -> Dict[str, Any]:
    """Spans -> a Chrome trace-event JSON object (not yet serialized).

    ``origin`` (epoch seconds) becomes trace time zero; it defaults to
    the earliest span start so timestamps stay small and positive.
    """
    events: List[Dict[str, Any]] = []
    if origin is None:
        origin = min((s.start for s in spans), default=0.0)
    for pid, name in sorted((process_names or {}).items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for s in spans:
        event: Dict[str, Any] = {
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": round((s.start - origin) * 1e6, 3),
            "dur": round(s.duration * 1e6, 3),
            "pid": s.pid,
            "tid": s.tid,
            "args": {**s.args, "status": s.status},
        }
        if s.status == "error":
            event["cname"] = "terrible"  # red in the trace viewer palette
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs.chrometrace"},
    }


def write_chrome_trace(
    spans: Sequence[Span],
    path_or_file: Union[str, IO[str]],
    process_names: Optional[Dict[int, str]] = None,
    origin: Optional[float] = None,
) -> Dict[str, Any]:
    """Serialize spans to ``path_or_file``; returns the trace object."""
    trace = to_chrome_trace(spans, process_names=process_names, origin=origin)
    if hasattr(path_or_file, "write"):
        json.dump(trace, path_or_file, indent=1)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(trace, fh, indent=1)
            fh.write("\n")
    return trace
