"""Unified metrics registry and exporters.

One naming scheme for every counter the reproduction collects:

* ``repro_sim_*`` — simulator counters (:class:`~repro.sim.stats.SimStats`),
  with cache access counts labelled ``{cache=...,op=...}`` and phase
  timings labelled ``{phase=...}``;
* ``repro_entangling_*`` — prefetcher-internal counters
  (:class:`~repro.core.entangling.EntanglingStats`);
* ``repro_table_*`` — Entangled-table counters
  (:class:`~repro.core.entangled_table.TableStats`), with the Figure-12
  format histogram labelled ``{bits=...}``.

Monotonic event counts register as ``counter``; derived ratios, rates and
wall-clock telemetry as ``gauge``.  The same registry feeds the JSON, CSV
and Prometheus-text exporters, replacing the previous per-dataclass
ad-hoc serialization paths.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Tuple

if TYPE_CHECKING:
    from repro.sim.simulator import SimResult
    from repro.sim.stats import SimStats

#: Derived SimStats properties exported as gauges alongside the raw counters.
_SIM_DERIVED = (
    "ipc",
    "l1i_miss_ratio",
    "l1i_mpki",
    "accuracy",
    "branch_misprediction_rate",
    "instrs_per_second",
    "cycles_per_second",
)

#: SimStats fields that are host-side telemetry, not architectural counts.
_SIM_GAUGES = ("wall_seconds", "attempts")


@dataclass
class Metric:
    """One named, typed metric with optional Prometheus-style labels."""

    name: str
    value: float
    kind: str = "counter"  # "counter" | "gauge"
    help: str = ""
    labels: Dict[str, str] = field(default_factory=dict)

    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return (self.name, tuple(sorted(self.labels.items())))

    def labels_text(self) -> str:
        if not self.labels:
            return ""
        body = ",".join(
            f'{key}="{value}"' for key, value in sorted(self.labels.items())
        )
        return "{" + body + "}"


class MetricsRegistry:
    """An ordered collection of :class:`Metric` with bulk constructors."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Metric] = {}

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str,
        value: float,
        kind: str = "counter",
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Metric:
        if kind not in ("counter", "gauge"):
            raise ValueError(f"unknown metric kind {kind!r}")
        metric = Metric(name, value, kind, help, dict(labels or {}))
        self._metrics[metric.key()] = metric
        return metric

    def add_dataclass(
        self,
        obj: Any,
        prefix: str,
        gauges: Iterable[str] = (),
        skip: Iterable[str] = (),
    ) -> None:
        """Register every numeric field of a counter dataclass.

        ``gauges`` names fields registered as gauges instead of counters;
        ``skip`` names fields handled specially by the caller.
        """
        gauge_set = set(gauges)
        skip_set = set(skip)
        for field_info in dataclasses.fields(obj):
            name = field_info.name
            if name in skip_set:
                continue
            value = getattr(obj, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            self.register(
                f"{prefix}_{name}",
                value,
                kind="gauge" if name in gauge_set else "counter",
            )

    def relabel(self, extra_labels: Mapping[str, str]) -> None:
        """Attach labels to every registered metric (e.g. config/workload)."""
        metrics = list(self._metrics.values())
        self._metrics.clear()
        for metric in metrics:
            metric.labels.update(extra_labels)
            self._metrics[metric.key()] = metric

    # -- access ---------------------------------------------------------------

    def metrics(self) -> List[Metric]:
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        key = (name, tuple(sorted((labels or {}).items())))
        return self._metrics[key].value

    def names(self) -> List[str]:
        seen: List[str] = []
        for metric in self._metrics.values():
            if metric.name not in seen:
                seen.append(metric.name)
        return seen

    # -- exporters ------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "metrics": [
                {
                    "name": m.name,
                    "value": m.value,
                    "kind": m.kind,
                    "help": m.help,
                    "labels": m.labels,
                }
                for m in self._metrics.values()
            ]
        }
        return json.dumps(payload, indent=indent)

    def to_csv(self) -> str:
        lines = ["name,labels,kind,value"]
        for m in self._metrics.values():
            labels = ";".join(f"{k}={v}" for k, v in sorted(m.labels.items()))
            lines.append(f"{m.name},{labels},{m.kind},{m.value}")
        return "\n".join(lines) + "\n"

    def to_prometheus_text(self) -> str:
        """Prometheus exposition format (text version 0.0.4)."""
        lines: List[str] = []
        described: set = set()
        for m in self._metrics.values():
            if m.name not in described:
                described.add(m.name)
                if m.help:
                    lines.append(f"# HELP {m.name} {m.help}")
                lines.append(f"# TYPE {m.name} {m.kind}")
            value = float(m.value)
            rendered = repr(int(value)) if value.is_integer() else repr(value)
            lines.append(f"{m.name}{m.labels_text()} {rendered}")
        return "\n".join(lines) + "\n"


# -- bulk constructors ------------------------------------------------------------


def registry_from_sim_stats(
    stats: "SimStats", registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """All SimStats counters, cache access counts, derived gauges and
    phase timings under the ``repro_sim_`` prefix."""
    registry = registry or MetricsRegistry()
    registry.add_dataclass(
        stats,
        "repro_sim",
        gauges=_SIM_GAUGES,
        skip=("cache_accesses", "phase_seconds"),
    )
    for cache, counts in sorted(stats.cache_accesses.items()):
        for op, value in (("read", counts.reads), ("write", counts.writes)):
            registry.register(
                "repro_sim_cache_accesses",
                value,
                help="Per-cache access counts (energy model inputs)",
                labels={"cache": cache, "op": op},
            )
    for phase, seconds in sorted(stats.phase_seconds.items()):
        registry.register(
            "repro_sim_phase_seconds",
            seconds,
            kind="gauge",
            help="Wall-clock seconds spent per simulator phase",
            labels={"phase": phase},
        )
    for name in _SIM_DERIVED:
        registry.register(
            f"repro_sim_{name}", getattr(stats, name), kind="gauge"
        )
    return registry


def registry_from_prefetcher(
    prefetcher: Any, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Entangling / table internal counters, when the prefetcher has them."""
    registry = registry or MetricsRegistry()
    estats = getattr(prefetcher, "estats", None)
    if estats is not None:
        registry.add_dataclass(estats, "repro_entangling")
        for name in (
            "avg_destinations_per_hit",
            "avg_src_bb_size",
            "avg_dst_bb_size",
            "avg_prefetches_per_hit",
        ):
            registry.register(
                f"repro_entangling_{name}", getattr(estats, name), kind="gauge"
            )
    table = getattr(prefetcher, "table", None)
    tstats = getattr(table, "stats", None)
    if tstats is not None:
        registry.add_dataclass(tstats, "repro_table", skip=("format_bits",))
        for bits, count in sorted(tstats.format_bits.items()):
            registry.register(
                "repro_table_format_bits",
                count,
                help="Destination arrays encoded per address width (Fig 12)",
                labels={"bits": str(bits)},
            )
    return registry


def registry_for_run(
    result: "SimResult", labels: Optional[Mapping[str, str]] = None
) -> MetricsRegistry:
    """The unified registry for one simulation: simulator counters plus
    any prefetcher-internal structures the run carried."""
    registry = registry_from_sim_stats(result.stats)
    if result.prefetcher is not None:
        registry_from_prefetcher(result.prefetcher, registry)
    if labels:
        registry.relabel(labels)
    return registry
