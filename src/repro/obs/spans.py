"""Cross-process span tracing for the evaluation engine.

Where :mod:`repro.obs.tracer` answers *what did one prefetcher do inside
one simulation*, this module answers *where did a 100-run evaluation
campaign spend its wall-clock*: every unit of engine work — the suite,
each (config, workload) task, each executor attempt, retry backoff,
cache lookup, and the worker-side pipeline stages — is recorded as a
:class:`Span` with epoch timestamps and a pid, and the parent merges the
per-worker span batches into one timeline that
:mod:`repro.obs.chrometrace` renders as Chrome trace-event JSON
(loadable in Perfetto / ``chrome://tracing``).

Mechanics mirror the rest of ``repro.obs``:

* **Zero cost when off.**  Nothing in the engine imports this module
  unless tracing was requested (``run_suite(..., trace_path=...)``,
  ``repro sweep --trace``); the engine discovers an installed recorder
  through ``sys.modules`` so an untraced process never pays the import.
  ``tests/test_obs.py`` asserts bit-identity against a process that
  never imports ``repro.obs.spans``.
* **Workers record locally, the parent merges.**  A worker builds a
  :class:`SpanRecorder`, wraps its attempt, bridges the pipeline
  ``stage()`` blocks via :class:`SpanStages`, and ships a picklable
  :class:`SpanBatch` back on the ``SimResult``.  The parent's
  :class:`SuiteSpanCollector` normalizes each batch's clock against the
  attempt window it observed (see :func:`normalize_batch`) so skewed
  worker clocks cannot produce spans outside their enclosing task.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanBatch",
    "SpanRecorder",
    "SpanStages",
    "SuiteSpanCollector",
    "get_span_recorder",
    "normalize_batch",
    "set_span_recorder",
    "span",
]


@dataclass
class Span:
    """One timed unit of work.

    ``start``/``end`` are epoch seconds (``time.time`` domain) so spans
    from different processes share one axis after normalization; ``tid``
    is a *display lane*, not an OS thread id (the Chrome trace format
    groups events into per-``(pid, tid)`` tracks).
    """

    name: str
    cat: str = "suite"
    start: float = 0.0
    end: float = 0.0
    pid: int = 0
    tid: int = 1
    status: str = "ok"  # "ok" | "error"
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def shifted(self, offset: float) -> "Span":
        if not offset:
            return self
        return replace(self, start=self.start + offset, end=self.end + offset)


@dataclass
class SpanBatch:
    """Picklable bundle of one process's spans, shipped parent-ward.

    ``role`` labels the process in the merged trace ("worker"/"suite");
    ``sent_at`` is the sender's clock at batch creation, kept so the
    merge can reason about clock offsets.
    """

    pid: int
    role: str
    spans: List[Span]
    sent_at: float


class SpanRecorder:
    """Collects spans for one process.

    Recording is append-only and cheap (one list append per span); the
    recorder itself is *not* shipped across processes — use
    :meth:`batch` for that.
    """

    def __init__(self, role: str = "suite") -> None:
        self.role = role
        self.pid = os.getpid()
        self.spans: List[Span] = []

    def __len__(self) -> int:
        return len(self.spans)

    def add(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "suite",
        status: str = "ok",
        tid: int = 1,
        **args: Any,
    ) -> Span:
        recorded = Span(
            name=name, cat=cat, start=start, end=end, pid=self.pid,
            tid=tid, status=status, args=dict(args),
        )
        self.spans.append(recorded)
        return recorded

    @contextmanager
    def span(
        self, name: str, cat: str = "suite", tid: int = 1, **args: Any
    ) -> Iterator[Dict[str, Any]]:
        """Time a ``with`` block as one span.

        Yields the args dict, so the block can attach results discovered
        mid-flight; an exception marks the span ``status="error"`` (with
        the exception text in ``args["error"]``) and propagates.
        """
        extra = dict(args)
        started = time.time()
        try:
            yield extra
        except BaseException as exc:
            extra.setdefault("error", f"{type(exc).__name__}: {exc}")
            self.add(
                name, started, time.time(), cat=cat, status="error",
                tid=tid, **extra,
            )
            raise
        self.add(name, started, time.time(), cat=cat, tid=tid, **extra)

    def batch(self) -> SpanBatch:
        """A picklable snapshot of everything recorded so far."""
        return SpanBatch(
            pid=self.pid, role=self.role, spans=list(self.spans),
            sent_at=time.time(),
        )


# -- the process-wide recorder slot -----------------------------------------
#
# Like the stage-profiler slot in repro.obs.profiler, but discovered by
# the engine via sys.modules (see repro.analysis.experiments) so a
# process that never traces never imports this module.

_recorder: Optional[SpanRecorder] = None


def get_span_recorder() -> Optional[SpanRecorder]:
    """The installed process-wide recorder, or None (the default)."""
    return _recorder


def set_span_recorder(recorder: Optional[SpanRecorder]) -> Optional[SpanRecorder]:
    """Install (or clear, with None) the process-wide span recorder.

    Returns the previous recorder so callers can restore it.
    """
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


@contextmanager
def span(name: str, cat: str = "suite", **args: Any) -> Iterator[Dict[str, Any]]:
    """Record a span against the installed recorder, if any (else no-op)."""
    recorder = _recorder
    if recorder is None:
        yield dict(args)
        return
    with recorder.span(name, cat=cat, **args) as extra:
        yield extra


class SpanStages:
    """Bridge: records pipeline ``stage()`` blocks as spans.

    Installable in the :func:`repro.obs.profiler.set_stage_profiler`
    slot (it duck-types the ``stage(name)`` context manager), so
    ``run_single``'s phases — workload build, fetch-unit preprocessing,
    simulation — become spans without the analysis layer importing this
    module.  ``chain`` forwards to a real :class:`PhaseProfiler` (or a
    previously installed bridge) so timing telemetry keeps accumulating.
    """

    def __init__(self, recorder: SpanRecorder, chain: Optional[Any] = None) -> None:
        self.recorder = recorder
        self.chain = chain

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        if self.chain is not None:
            with self.chain.stage(name):
                with self.recorder.span(name, cat="stage"):
                    yield
        else:
            with self.recorder.span(name, cat="stage"):
                yield


@contextmanager
def worker_span_scope(role: str = "worker") -> Iterator[SpanRecorder]:
    """Worker-side recording scope: a fresh recorder + stage bridge.

    Installs a :class:`SpanStages` bridge (chaining any existing stage
    profiler) for the duration of the block and restores the previous
    slot on exit, so pipeline stages inside the block land in the
    yielded recorder.
    """
    from repro.obs.profiler import get_stage_profiler, set_stage_profiler

    recorder = SpanRecorder(role=role)
    previous = set_stage_profiler(SpanStages(recorder, chain=get_stage_profiler()))
    try:
        yield recorder
    finally:
        set_stage_profiler(previous)


# -- merge / clock normalization --------------------------------------------


def normalize_batch(
    batch: SpanBatch,
    window_start: Optional[float] = None,
    window_end: Optional[float] = None,
) -> Tuple[List[Span], float]:
    """Shift a worker batch's spans into the parent's observation window.

    Processes on one host *should* agree on ``time.time``, but NTP
    steps, container clock namespaces, and coarse clock sources all
    produce worker timestamps that fall outside the parent-observed
    attempt window — and a span that starts before its parent dispatched
    the task renders as garbage in the merged trace.  The rule:

    * spans starting before ``window_start`` shift forward to it;
    * otherwise spans ending after ``window_end`` shift back to it —
      unless that would push the batch before ``window_start``, in which
      case the start anchors (the window can be shorter than the batch
      when the parent's collection loop observed the result late).

    Returns the shifted spans and the offset applied (seconds; 0.0 for
    a well-behaved clock).
    """
    if not batch.spans:
        return [], 0.0
    earliest = min(s.start for s in batch.spans)
    latest = max(s.end for s in batch.spans)
    offset = 0.0
    if window_start is not None and earliest < window_start:
        offset = window_start - earliest
    elif window_end is not None and latest > window_end:
        offset = window_end - latest
        if window_start is not None and earliest + offset < window_start:
            offset = window_start - earliest
    return [s.shifted(offset) for s in batch.spans], offset


class SuiteSpanCollector:
    """Parent-side span assembly for one suite evaluation.

    Doubles as the executor's attempt observer (see
    ``repro.analysis.parallel.map_resilient``): every attempt — including
    ones that crashed, timed out, or returned a corrupt result — becomes
    a span, error-tagged with the failure text, so the merged trace
    matches the :class:`~repro.analysis.parallel.FaultReport`.  Worker
    batches are merged via :func:`normalize_batch` against the attempt
    window the parent observed for that task.
    """

    def __init__(self, recorder: SpanRecorder) -> None:
        self.recorder = recorder
        self.clock_offsets: Dict[int, float] = {}
        self._attempt_started: Dict[Tuple[str, int], float] = {}
        self._windows: Dict[str, Tuple[float, float]] = {}
        self._tasks: Dict[str, Dict[str, Any]] = {}
        self._lanes: Dict[str, int] = {}
        self._roles: Dict[int, str] = {recorder.pid: recorder.role}

    def _lane(self, label: str) -> int:
        # One display lane per task label, so concurrent attempt windows
        # render as parallel tracks instead of overlapping on one row.
        if label not in self._lanes:
            self._lanes[label] = 2 + len(self._lanes)
        return self._lanes[label]

    # -- observer protocol (called by map_resilient) ------------------------

    def attempt_started(self, label: str, attempt: int) -> None:
        self._attempt_started[(label, attempt)] = time.time()

    def attempt_finished(
        self, label: str, attempt: int, ok: bool, error: Optional[str] = None
    ) -> None:
        ended = time.time()
        started = self._attempt_started.pop((label, attempt), ended)
        args: Dict[str, Any] = {"label": label, "attempt": attempt}
        if error:
            args["error"] = error
        self.recorder.add(
            "attempt", started, ended, cat="executor",
            status="ok" if ok else "error", tid=self._lane(label), **args,
        )
        if ok:
            self._windows[label] = (started, ended)
        task = self._tasks.setdefault(
            label, {"start": started, "end": ended, "attempts": 0, "ok": ok},
        )
        task["start"] = min(task["start"], started)
        task["end"] = max(task["end"], ended)
        task["attempts"] += 1
        task["ok"] = ok

    def backoff(
        self, attempt: int, started: float, ended: float, pending: int
    ) -> None:
        self.recorder.add(
            "backoff", started, ended, cat="executor",
            attempt=attempt, pending=pending,
        )

    # -- parent-side engine hooks -------------------------------------------

    def cache_lookup(
        self, label: str, hit: bool, started: float, ended: float
    ) -> None:
        self.recorder.add(
            "cache_lookup", started, ended, cat="cache",
            label=label, hit=hit,
        )
        if hit:
            task = self._tasks.setdefault(
                label, {"start": started, "end": ended, "attempts": 0, "ok": True},
            )
            task.setdefault("cached", True)

    def add_batch(self, batch: SpanBatch, label: str) -> None:
        """Merge a worker's spans, clock-normalized to ``label``'s window."""
        window = self._windows.get(label, (None, None))
        spans, offset = normalize_batch(batch, window[0], window[1])
        self.recorder.spans.extend(spans)
        self.clock_offsets[batch.pid] = offset
        self._roles.setdefault(batch.pid, batch.role)

    def finish(self) -> None:
        """Emit the per-task summary spans (after all attempts resolved)."""
        for label in sorted(self._tasks):
            task = self._tasks[label]
            args: Dict[str, Any] = {"label": label, "attempts": task["attempts"]}
            if task.get("cached"):
                args["cached"] = True
            self.recorder.add(
                "task", task["start"], task["end"], cat="executor",
                status="ok" if task["ok"] else "error",
                tid=self._lane(label), **args,
            )

    def process_names(self) -> Dict[int, str]:
        """pid -> display name for the Chrome trace process metadata."""
        return {
            pid: f"{role} (pid {pid})" for pid, role in sorted(self._roles.items())
        }
