"""Stdlib-only HTTP metrics endpoint for mid-flight scraping.

Long evaluations (the full 959-trace x 15-config field, a multi-hour
tune) are opaque while they run unless something exposes their state.
:class:`MetricsHTTPServer` serves the existing
:class:`~repro.obs.registry.MetricsRegistry` Prometheus text (exposition
format 0.0.4) plus live engine gauges — running/done/failed/cached/ETA
from a :class:`~repro.obs.events.StatusAggregator` — over plain
``http.server``, no dependencies:

* ``GET /metrics`` (or ``/``) — Prometheus text;
* ``GET /healthz`` — liveness probe (``ok``).

Two sources cover both deployment shapes: :func:`bus_metrics_source`
renders the live in-process bus (``--metrics-port`` on
``run``/``sweep``/``tune``), :func:`ledger_metrics_source` re-reads a
ledger file per scrape (``repro metrics-serve``, which can watch an
evaluation owned by another process).

Zero-cost contract: imported only when a metrics port is requested.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs.events import StatusAggregator, read_events
from repro.obs.registry import MetricsRegistry

__all__ = [
    "MetricsHTTPServer",
    "bus_metrics_source",
    "ledger_metrics_source",
    "status_registry",
]


def status_registry(
    status: StatusAggregator,
    counts: Optional[Dict[str, int]] = None,
) -> MetricsRegistry:
    """Engine gauges + per-type event counters as a metrics registry."""
    registry = MetricsRegistry()
    gauges = (
        ("repro_engine_tasks_total", status.total, "tasks in the evaluation"),
        ("repro_engine_done", status.done, "tasks completed (incl. cached)"),
        ("repro_engine_running", status.running, "tasks currently running"),
        ("repro_engine_failed", status.failed, "tasks quarantined"),
        ("repro_engine_cached", status.cached, "run-cache hits served"),
        ("repro_engine_suites_started", status.suites_started,
         "suite evaluations begun"),
        ("repro_engine_suites_finished", status.suites_finished,
         "suite evaluations completed"),
    )
    for name, value, help_text in gauges:
        registry.register(name, float(value), kind="gauge", help=help_text)
    eta = status.eta_seconds()
    if eta is not None:
        registry.register(
            "repro_engine_eta_seconds", float(eta), kind="gauge",
            help="estimated seconds until the evaluation completes",
        )
    for type_, count in sorted((counts or status.counts).items()):
        registry.register(
            "repro_events_total", float(count), kind="counter",
            help="telemetry events published, by type",
            labels={"type": type_},
        )
    return registry


def bus_metrics_source(bus) -> Callable[[], str]:
    """Scrape source rendering a live in-process EventBus."""

    def render() -> str:
        status = bus.status or StatusAggregator()
        return status_registry(status, bus.counts).to_prometheus_text()

    return render


def ledger_metrics_source(path: str) -> Callable[[], str]:
    """Scrape source re-reading a ledger file on every request."""

    def render() -> str:
        read = read_events(path)
        status = StatusAggregator()
        for event in read.events:
            status.handle(event)
        registry = status_registry(status)
        registry.register(
            "repro_events_torn", float(read.torn), kind="counter",
            help="torn tail records tolerated by the ledger reader",
        )
        registry.register(
            "repro_events_invalid", float(read.invalid), kind="counter",
            help="undecodable ledger lines skipped by the reader",
        )
        return registry.to_prometheus_text()

    return render


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/", "/metrics"):
            body = self.server.render_metrics().encode("utf-8")  # type: ignore[attr-defined]
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            status = 200
        elif path == "/healthz":
            body = b"ok\n"
            content_type = "text/plain; charset=utf-8"
            status = 200
        else:
            body = b"not found\n"
            content_type = "text/plain; charset=utf-8"
            status = 404
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass


class MetricsHTTPServer:
    """A daemon-threaded scrape endpoint around any text-producing source.

    ``port=0`` binds a free port (read it back from :attr:`port`); the
    server never blocks the evaluation — requests are handled on daemon
    threads and a failing source renders as a comment, not a 500 storm.
    """

    def __init__(
        self,
        source: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._source = source
        self._httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._httpd.daemon_threads = True
        self._httpd.render_metrics = self._render  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self.host, self.port = self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def _render(self) -> str:
        try:
            return self._source()
        except Exception as exc:  # noqa: BLE001 — scraping must stay up
            return f"# metrics source failed: {type(exc).__name__}: {exc}\n"

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            daemon=True,
            name="repro-metrics-http",
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
