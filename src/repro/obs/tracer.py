"""Prefetch-lifecycle event tracing.

The tracer is a passive observer: the simulator calls
:meth:`PrefetchTracer.emit` at every lifecycle transition, and the tracer
only appends to a bounded ring buffer.  It never feeds information back
into the simulation, so enabling it cannot change any architectural
counter; when no tracer is attached the hook sites reduce to a single
``is None`` check.

Lifecycle of one prefetched line (event kinds in order)::

    pf_requested -> pf_enqueued | pf_dropped(reason)
    pf_enqueued  -> pf_issued   | pf_stale(reason)
    pf_issued    -> fill
    fill         -> pf_useful | pf_wrong            (timely or never used)
    pf_late                                          (demanded mid-flight)

Demand-side events (``demand_access`` with a hit/miss flag and ``fill``
for demand misses) interleave with the prefetch events so the derived
:class:`TimelinessReport` can measure *margins*: how early a useful
prefetch arrived, how late a late one completed, and how long a wrong one
sat in the cache before being evicted unused.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, NamedTuple, Optional, Tuple

#: Every kind the simulator emits, in rough lifecycle order.
EVENT_KINDS = (
    "pf_requested",
    "pf_enqueued",
    "pf_dropped",       # arg: "in_cache" | "in_flight" | "pq_full"
    "pf_stale",         # arg: "in_cache" | "in_flight" (filtered at issue)
    "pf_issued",
    "fill",             # arg: (is_demand, was_prefetch, latency)
    "pf_useful",
    "pf_late",
    "pf_wrong",         # evicted with the access bit still unset
    "demand_access",    # arg: hit (bool)
)

#: Multiplier for the sampling hash (Knuth's multiplicative constant) —
#: spreads line addresses so ``sample=N`` keeps ~1/N of the *lines*
#: (every event of a kept line is recorded, keeping lifecycles coherent).
_HASH_MULT = 0x9E3779B1
_HASH_MASK = 0xFFFFFFFF


class TraceEvent(NamedTuple):
    """One recorded lifecycle transition."""

    kind: str
    cycle: int
    line_addr: int
    src_meta: Any
    arg: Any


class PrefetchTracer:
    """Ring-buffered, sampling-capable lifecycle event recorder.

    Args:
        capacity: ring-buffer size; the oldest events are overwritten
            once ``capacity`` is exceeded (``overflowed`` reports this).
        sample: keep every line whose 32-bit multiplicative hash falls in
            the lowest ``1/sample`` of the hash space.  ``1`` records
            everything; sampling decisions are per *line address*, so a
            sampled line's entire lifecycle stays coherent.
    """

    def __init__(self, capacity: int = 1 << 20, sample: int = 1) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        if sample < 1:
            raise ValueError("sample must be at least 1 (1 = record all)")
        self.capacity = capacity
        self.sample = sample
        self._threshold = (_HASH_MASK + 1) // sample
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0      # events offered (post-sampling)
        self.sampled_out = 0  # events skipped by the sampling filter

    # -- recording -----------------------------------------------------------

    def wants(self, line_addr: int) -> bool:
        """Sampling decision for a line (stable across its lifecycle)."""
        if self.sample == 1:
            return True
        return ((line_addr * _HASH_MULT) & _HASH_MASK) < self._threshold

    def emit(
        self,
        kind: str,
        cycle: int,
        line_addr: int,
        src_meta: Any = None,
        arg: Any = None,
    ) -> None:
        if not self.wants(line_addr):
            self.sampled_out += 1
            return
        self.emitted += 1
        self._events.append(TraceEvent(kind, cycle, line_addr, src_meta, arg))

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def overflowed(self) -> bool:
        """True when the ring wrapped and early events were lost."""
        return self.emitted > len(self._events)

    @property
    def is_exact(self) -> bool:
        """True when the buffer holds the *complete* event stream."""
        return not self.overflowed and self.sample == 1

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0
        self.sampled_out = 0

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


def _log2_bucket(value: int) -> str:
    """Histogram bucket label: 0, 1, 2, 3-4, 5-8, 9-16, ..."""
    if value <= 2:
        return str(max(value, 0))
    low = 1 << ((value - 1).bit_length() - 1)
    return f"{low + 1}-{low * 2}"


def _bucket_sort_key(label: str) -> int:
    return int(label.split("-", 1)[0])


class TimelinessReport:
    """Per-prefetch timeliness derived from a traced run (Figure 5/13 style).

    Totals (``useful`` / ``late`` / ``wrong``) count the corresponding
    feedback events; with an exact trace (no sampling, no ring overflow)
    they equal the ``SimStats`` counters of the same run.  Margins are
    measured in cycles:

    * useful:  demand cycle - fill cycle (how early the line arrived);
    * late:    fill cycle - demand cycle (how long the demand kept waiting);
    * wrong:   evict cycle - fill cycle (wasted residency).
    """

    def __init__(self) -> None:
        self.useful = 0
        self.late = 0
        self.wrong = 0
        self.demand_accesses = 0
        self.demand_hits = 0
        self.useful_margins: Dict[str, int] = {}
        self.late_margins: Dict[str, int] = {}
        self.wrong_lifetimes: Dict[str, int] = {}
        #: (src, dst) pair -> [useful, late, wrong]
        self.per_pair: Dict[Tuple[int, int], List[int]] = {}
        self.exact = True

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer: PrefetchTracer) -> "TimelinessReport":
        report = cls.from_events(tracer.events())
        report.exact = tracer.is_exact
        return report

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "TimelinessReport":
        report = cls()
        last_fill: Dict[int, int] = {}    # line -> most recent fill cycle
        late_marked: Dict[int, int] = {}  # line -> demand cycle of the late mark
        for event in events:
            kind = event.kind
            if kind == "fill":
                line = event.line_addr
                demand_cycle = late_marked.pop(line, None)
                if demand_cycle is not None:
                    report._bucket(report.late_margins, event.cycle - demand_cycle)
                last_fill[line] = event.cycle
            elif kind == "pf_useful":
                report.useful += 1
                report._pair(event.src_meta, 0)
                fill_cycle = last_fill.get(event.line_addr)
                if fill_cycle is not None:
                    report._bucket(report.useful_margins, event.cycle - fill_cycle)
            elif kind == "pf_late":
                report.late += 1
                report._pair(event.src_meta, 1)
                late_marked[event.line_addr] = event.cycle
            elif kind == "pf_wrong":
                report.wrong += 1
                report._pair(event.src_meta, 2)
                fill_cycle = last_fill.get(event.line_addr)
                if fill_cycle is not None:
                    report._bucket(report.wrong_lifetimes, event.cycle - fill_cycle)
            elif kind == "demand_access":
                report.demand_accesses += 1
                if event.arg:
                    report.demand_hits += 1
        return report

    def _bucket(self, histogram: Dict[str, int], value: int) -> None:
        label = _log2_bucket(value)
        histogram[label] = histogram.get(label, 0) + 1

    def _pair(self, src_meta: Any, slot: int) -> None:
        if isinstance(src_meta, tuple) and len(src_meta) == 2:
            counts = self.per_pair.setdefault(src_meta, [0, 0, 0])
            counts[slot] += 1

    # -- rendering ----------------------------------------------------------------

    def worst_pairs(self, limit: int = 10) -> List[Tuple[Tuple[int, int], List[int]]]:
        """Pairs ranked by late+wrong count (the debugging entry point)."""
        ranked = sorted(
            self.per_pair.items(), key=lambda kv: (-(kv[1][1] + kv[1][2]), kv[0])
        )
        return ranked[:limit]

    def format(self, limit: int = 10) -> str:
        lines = [
            "Prefetch timeliness (traced)"
            + ("" if self.exact else "  [sampled/overflowed: totals are estimates]"),
            f"  useful={self.useful} late={self.late} wrong={self.wrong} "
            f"demand_accesses={self.demand_accesses} "
            f"demand_hits={self.demand_hits}",
        ]
        for title, histogram in (
            ("useful margin (cycles early)", self.useful_margins),
            ("late margin (cycles waited)", self.late_margins),
            ("wrong lifetime (cycles resident)", self.wrong_lifetimes),
        ):
            lines.append(f"  {title}:")
            if not histogram:
                lines.append("    (none)")
                continue
            for label in sorted(histogram, key=_bucket_sort_key):
                lines.append(f"    {label:>9s}: {histogram[label]}")
        worst = self.worst_pairs(limit)
        if worst:
            lines.append(f"  worst (src, dst) pairs by late+wrong (top {len(worst)}):")
            for (src, dst), (useful, late, wrong) in worst:
                lines.append(
                    f"    0x{src:x} -> 0x{dst:x}: "
                    f"useful={useful} late={late} wrong={wrong}"
                )
        return "\n".join(lines)
