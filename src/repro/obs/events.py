"""Unified telemetry: event bus, JSONL run ledger, crash flight recorder.

Every observability signal the evaluation engine produces — worker
heartbeats, executor attempts and quarantines, run-cache hits/misses,
sanitizer findings, suite lifecycle — is a silo with its own format
unless something unifies them.  This module is that something: one
versioned, structured :class:`TelemetryEvent` schema, one process-wide
:class:`EventBus` everything publishes into, and an append-only JSONL
**run ledger** (:class:`EventLedger`) so a long evaluation leaves a
durable, queryable record (``repro events`` / ``repro top``) and can be
scraped mid-flight (:mod:`repro.obs.exporthttp`).

Event routing is exactly-once by construction:

* worker-side lifecycle (``started``/``heartbeat``/``finished``/
  ``failed``) rides the existing heartbeat progress queue and is
  translated by the parent monitor's ``sink`` into ``task_*`` events;
* richer worker-side events (e.g. sanitizer reports) go through a
  :class:`WorkerEventRelay` installed as the worker's process bus — they
  cross the same queue as opaque ``bus`` progress events, so the parent
  assigns one monotonic ``seq`` per event at publish time;
* parent-side executor verdicts (``attempt_failed``, ``backoff``,
  ``quarantined``) come from the :class:`EventObserver` hooked into
  ``map_resilient``;
* cache traffic (``cache_hit``/``cache_miss``/``cache_store``) comes
  from the :class:`~repro.analysis.runcache.RunCache`'s duck-typed
  ``publisher`` hook — a single ``is None`` check, no imports.

The **flight recorder** keeps a bounded ring of the most recent events;
when an attempt crashes, times out, or a task is quarantined, the ring
is dumped as an atomic JSON artifact (via :mod:`repro.check.artifacts`)
and linked from the run's
:class:`~repro.analysis.parallel.FaultReport` — a post-mortem of what
the fleet was doing when the worker died.

Zero-cost contract (same as :mod:`repro.obs.spans`): nothing imports
this module unless events are explicitly enabled
(``run_suite(..., events_path=)``, ``REPRO_EVENTS``, ``--events`` /
``--metrics-port``); an untraced run never loads it (subprocess-pinned
in ``tests/test_events.py``) and is bit-identical.
"""

from __future__ import annotations

import json
import logging
import os
import re
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.check.artifacts import atomic_write_json

logger = logging.getLogger(__name__)

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "TelemetryEvent",
    "EventBus",
    "EventLedger",
    "EventObserver",
    "FlightRecorder",
    "LedgerRead",
    "StatusAggregator",
    "WorkerEventRelay",
    "compose_observers",
    "event_matches",
    "events_path_from_env",
    "follow_events",
    "get_event_bus",
    "open_bus",
    "progress_event_sink",
    "read_events",
    "set_event_bus",
    "summarize_events",
]

#: Bumped whenever a field changes meaning; the reader rejects (counts as
#: invalid) records stamped with any other version instead of mis-parsing.
SCHEMA_VERSION = 1

#: The canonical vocabulary.  The bus accepts any type string (forward
#: compatibility for e.g. ``repro serve``), but everything the engine
#: publishes is one of these.
EVENT_TYPES = (
    "suite_started",    # one evaluation began (payload carries n_tasks)
    "suite_finished",   # ... and ended
    "task_started",     # a worker began attempt N of a task
    "heartbeat",        # the worker is still alive inside a task
    "task_finished",    # the worker completed the attempt successfully
    "task_failed",      # the attempt raised inside the worker
    "attempt_failed",   # the executor's verdict (incl. timeouts/pool breaks)
    "backoff",          # retry backoff sleep between rounds
    "quarantined",      # the task failed every attempt
    "cache_hit",        # run cache served a result
    "cache_miss",       # run cache had nothing
    "cache_store",      # run cache stored a fresh result
    "sanitizer",        # invariant sanitizer report for one run
    "flight_dump",      # a flight-recorder artifact was written
    "cache_evicted",    # the shared store evicted an entry (size/age)
    "lease_wait",       # a follower is coalescing on another process's run
    "store_degraded",   # ENOSPC/EIO degraded the shared store to read-only
)

#: Ledger rotation threshold (``REPRO_EVENTS_MAX_BYTES``): when an append
#: would push the file past this size it is rotated to ``<path>.1`` first.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

#: Flight-recorder ring capacity (``REPRO_FLIGHT_EVENTS``).
DEFAULT_FLIGHT_EVENTS = 64


def _env_positive_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    return value if value > 0 else default


def events_path_from_env() -> Optional[str]:
    """The ledger path from ``REPRO_EVENTS``, or None when unset/empty."""
    raw = os.environ.get("REPRO_EVENTS", "").strip()
    return raw or None


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------


@dataclass
class TelemetryEvent:
    """One structured telemetry record.

    ``seq`` is monotonic per publishing bus; ``ts`` is the wall clock at
    the *source* (a worker's relay stamps its own time/pid, so the record
    carries true provenance even though the parent assigns ``seq``).
    ``run`` is the :func:`~repro.analysis.runcache.run_key` fingerprint
    when known — the join key MANA-style cross-config comparisons need —
    and ``cycle`` is the simulated-cycle stamp for events that have one.
    """

    type: str
    seq: int = 0
    ts: float = 0.0
    pid: int = 0
    run: str = ""
    config: str = ""
    workload: str = ""
    attempt: Optional[int] = None
    cycle: Optional[int] = None
    payload: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @property
    def label(self) -> str:
        """The engine's ``config/workload`` task label (best effort)."""
        if self.config and self.workload:
            return f"{self.config}/{self.workload}"
        return self.config or self.workload

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "type": self.type,
            "seq": self.seq,
            "ts": self.ts,
            "pid": self.pid,
            "run": self.run,
            "config": self.config,
            "workload": self.workload,
            "attempt": self.attempt,
            "cycle": self.cycle,
            "payload": self.payload,
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Any) -> "TelemetryEvent":
        """Validate and rebuild; raises ``ValueError`` on any bad record."""
        if not isinstance(data, dict):
            raise ValueError("event record must be a JSON object")
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported event schema_version {version!r}")
        type_ = data.get("type")
        if not isinstance(type_, str) or not type_:
            raise ValueError("event record has no type")
        try:
            attempt = data.get("attempt")
            cycle = data.get("cycle")
            payload = data.get("payload")
            return cls(
                type=type_,
                seq=int(data.get("seq", 0)),
                ts=float(data.get("ts", 0.0)),
                pid=int(data.get("pid", 0)),
                run=str(data.get("run", "") or ""),
                config=str(data.get("config", "") or ""),
                workload=str(data.get("workload", "") or ""),
                attempt=None if attempt is None else int(attempt),
                cycle=None if cycle is None else int(cycle),
                payload=dict(payload) if isinstance(payload, dict) else {},
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed event record: {exc}") from None


# ---------------------------------------------------------------------------
# ledger (append-only JSONL, rotation, torn-tail-tolerant reader)
# ---------------------------------------------------------------------------


def rotated_path(path: str) -> str:
    return path + ".1"


class EventLedger:
    """Append-only JSONL event log safe for concurrent appenders.

    Each record is one compact-JSON line written with a *single*
    ``os.write`` to an ``O_APPEND`` descriptor: POSIX guarantees the
    kernel serializes such writes, so two processes appending to one
    ledger never interleave bytes within a record (pinned in
    ``tests/test_events.py``).  When an append would push the file past
    ``max_bytes`` the current file is rotated to ``<path>.1``
    (``os.replace``, atomic; a concurrent rotation by another process is
    tolerated).  Appends are best-effort: a full disk degrades telemetry,
    never the evaluation.
    """

    def __init__(self, path: str, max_bytes: Optional[int] = None) -> None:
        self.path = path
        self.max_bytes = (
            max_bytes
            if max_bytes is not None
            else _env_positive_int("REPRO_EVENTS_MAX_BYTES", DEFAULT_MAX_BYTES)
        )
        self.appended = 0
        self.dropped = 0
        self.rotations = 0
        self._fd: Optional[int] = None
        self._closed = False
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
        return self._fd

    def _maybe_rotate(self, incoming: int) -> None:
        fd = self._ensure_fd()
        size = os.fstat(fd).st_size
        if size <= 0 or size + incoming <= self.max_bytes:
            return
        os.close(fd)
        self._fd = None
        try:
            os.replace(self.path, rotated_path(self.path))
            self.rotations += 1
        except OSError:
            pass  # another appender rotated first; just reopen
        self._ensure_fd()

    def append(self, event: TelemetryEvent) -> None:
        if self._closed:
            return
        line = (event.to_json_line() + "\n").encode("utf-8")
        try:
            self._fsfault()
            self._maybe_rotate(len(line))
            os.write(self._ensure_fd(), line)
            self.appended += 1
        except OSError as exc:
            self.dropped += 1
            if self.dropped == 1:
                # Log once: a full disk degrades telemetry, never the
                # evaluation — subsequent drops are only counted.
                logger.warning(
                    "event ledger %s is unwritable (%s); dropping events",
                    self.path, exc,
                )

    def _fsfault(self) -> None:
        """Chaos seam (:mod:`repro.check.fsfault`), zero-cost unless armed."""
        if (
            "repro.check.fsfault" not in sys.modules
            and not os.environ.get("REPRO_FSFAULT")
        ):
            return
        from repro.check.fsfault import fault_check

        fault_check("append", self.path, scope="ledger")

    def close(self) -> None:
        self._closed = True
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None


@dataclass
class LedgerRead:
    """Outcome of :func:`read_events`: valid events + damage accounting."""

    events: List[TelemetryEvent] = field(default_factory=list)
    torn: int = 0      # truncated tail record(s) — a writer died mid-append
    invalid: int = 0   # undecodable / wrong-schema lines elsewhere
    files: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.torn == 0 and self.invalid == 0


def _read_ledger_file(path: str, out: LedgerRead) -> None:
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return
    except OSError as exc:
        logger.warning("event ledger %s is unreadable (%s); skipping", path, exc)
        out.invalid += 1
        return
    out.files.append(path)
    if not raw:
        return
    lines = raw.split(b"\n")
    # A complete file ends with a newline, leaving one empty trailing
    # chunk; a non-empty final chunk is a torn append unless it happens
    # to parse (writer cut exactly before the newline).
    tail_torn = bool(lines and lines[-1])
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        is_tail = tail_torn and position == len(lines) - 1
        try:
            data = json.loads(line.decode("utf-8"))
            out.events.append(TelemetryEvent.from_dict(data))
        except (ValueError, UnicodeDecodeError):
            if is_tail:
                out.torn += 1
            else:
                out.invalid += 1


def read_events(path: str, include_rotated: bool = True) -> LedgerRead:
    """Read a ledger without ever raising for damage.

    Mirrors :func:`repro.check.artifacts.load_json_guarded`: a missing
    file is a normal state (empty read), a torn tail — the one record a
    dying writer half-appended — is counted, skipped, and never kills the
    reader, and undecodable mid-file lines are counted separately so
    callers can distinguish "writer died" from "file corrupted".
    """
    out = LedgerRead()
    if include_rotated:
        _read_ledger_file(rotated_path(path), out)
    _read_ledger_file(path, out)
    return out


def _drain_lines(buffer: bytes) -> "tuple[List[TelemetryEvent], bytes]":
    """Split complete lines off ``buffer`` and decode them as events."""
    events: List[TelemetryEvent] = []
    while b"\n" in buffer:
        line, buffer = buffer.split(b"\n", 1)
        if not line.strip():
            continue
        try:
            events.append(
                TelemetryEvent.from_dict(json.loads(line.decode("utf-8")))
            )
        except (ValueError, UnicodeDecodeError):
            continue
    return events, buffer


def follow_events(
    path: str,
    duration: Optional[float] = None,
    poll: float = 0.5,
) -> Iterator[TelemetryEvent]:
    """Tail a ledger: yield complete appended records as they arrive.

    Only whole lines are yielded (a torn tail stays buffered until its
    writer finishes it or rotation resets the file).  ``duration`` bounds
    the follow (None = until interrupted).

    Rotation-safe: the follower holds the file *descriptor* open, so when
    an appender rotates the ledger (``os.replace`` to ``<path>.1``) the
    old inode is first drained to EOF — no record appended between the
    last poll and the swap is ever lost — and only then does the follower
    reopen ``path`` and continue from the head of the new file.  Rotation
    is detected by comparing ``os.stat(path).st_ino`` against the open
    descriptor's inode; in-place truncation (same inode, smaller size)
    restarts from offset 0.
    """
    deadline = None if duration is None else time.time() + duration
    buffer = b""
    fh = None
    try:
        while True:
            if fh is None:
                try:
                    fh = open(path, "rb")
                    buffer = b""
                except OSError:
                    fh = None
            rotated = False
            if fh is not None:
                # Reading the open descriptor reaches EOF of whatever
                # inode we hold — including one already renamed away.
                buffer += fh.read()
                events, buffer = _drain_lines(buffer)
                for event in events:
                    yield event
                try:
                    st = os.stat(path)
                    if st.st_ino != os.fstat(fh.fileno()).st_ino:
                        rotated = True
                    elif st.st_size < fh.tell():  # truncated in place
                        fh.seek(0)
                        buffer = b""
                except OSError:
                    rotated = True  # path vanished mid-rotation
                if rotated:
                    # Final drain of the old inode, then switch files
                    # immediately (no sleep: the new file is already live).
                    buffer += fh.read()
                    events, _torn = _drain_lines(buffer)
                    for event in events:
                        yield event
                    fh.close()
                    fh = None
                    buffer = b""
            if deadline is not None and time.time() >= deadline:
                return
            if not rotated:
                time.sleep(poll)
    finally:
        if fh is not None:
            fh.close()


def event_matches(
    event: TelemetryEvent,
    types: Optional[Sequence[str]] = None,
    run: Optional[str] = None,
    workload: Optional[str] = None,
    config: Optional[str] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> bool:
    """The ``repro events`` filter predicate (all criteria AND together)."""
    if types and event.type not in types:
        return False
    if run is not None and event.run != run:
        return False
    if workload is not None and event.workload != workload:
        return False
    if config is not None and event.config != config:
        return False
    if since is not None and event.ts < since:
        return False
    if until is not None and event.ts > until:
        return False
    return True


def summarize_events(read: LedgerRead) -> Dict[str, Any]:
    """Counts per type + window + damage, for ``repro events --summary``."""
    counts: Dict[str, int] = {}
    first = last = None
    for event in read.events:
        counts[event.type] = counts.get(event.type, 0) + 1
        if event.ts:
            first = event.ts if first is None else min(first, event.ts)
            last = event.ts if last is None else max(last, event.ts)
    return {
        "total": len(read.events),
        "counts": counts,
        "torn": read.torn,
        "invalid": read.invalid,
        "files": read.files,
        "first_ts": first,
        "last_ts": last,
    }


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


_SAFE_LABEL = re.compile(r"[^A-Za-z0-9._-]+")


def flight_artifact_name(label: str) -> str:
    return "flight-" + (_SAFE_LABEL.sub("_", label) or "task") + ".json"


class FlightRecorder:
    """Bounded ring of the most recent events, dumpable as a post-mortem.

    The ring rides along on every publish; only a crash/timeout/
    quarantine pays the dump cost.  Dumps go through the atomic artifact
    writer, so a reader never sees a half-written recording.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = (
            capacity
            if capacity is not None
            else _env_positive_int("REPRO_FLIGHT_EVENTS", DEFAULT_FLIGHT_EVENTS)
        )
        self.total_seen = 0
        self._ring: deque = deque(maxlen=self.capacity)

    def record(self, event: TelemetryEvent) -> None:
        self._ring.append(event)
        self.total_seen += 1

    def snapshot(self) -> List[TelemetryEvent]:
        return list(self._ring)

    def dump(
        self,
        path: str,
        reason: str,
        label: str = "",
        attempt: Optional[int] = None,
    ) -> str:
        """Write the ring as an atomic JSON artifact; returns ``path``."""
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "kind": "flight_recording",
            "reason": reason,
            "label": label,
            "attempt": attempt,
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "capacity": self.capacity,
            "total_events_seen": self.total_seen,
            "events": [event.to_dict() for event in self._ring],
        }
        atomic_write_json(path, envelope, fsync=False)
        return path


# ---------------------------------------------------------------------------
# status aggregation (repro top / metrics endpoint)
# ---------------------------------------------------------------------------


#: Event kinds that define a task's lifecycle state (and hence create
#: rows in the status table); everything else only enriches.
_LIFECYCLE_KINDS = frozenset((
    "task_started", "heartbeat", "task_finished", "task_failed",
    "attempt_failed", "backoff", "quarantined", "cache_hit",
))


class StatusAggregator:
    """Engine status derived purely from the event stream.

    One implementation serves both the live path (subscribed to a bus,
    feeding the metrics endpoint's gauges) and the offline path
    (``repro top`` replaying a ledger): feed events in order via
    :meth:`handle` and read ``running``/``done``/``failed``/``cached``/
    :meth:`eta_seconds` at any point.
    """

    def __init__(self) -> None:
        self.total = 0
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.counts: Dict[str, int] = {}
        self.suites_started = 0
        self.suites_finished = 0
        self._state: Dict[str, Dict[str, Any]] = {}
        self._started_ts: Optional[float] = None
        self._last_ts: Optional[float] = None

    def handle(self, event: TelemetryEvent) -> None:
        self.counts[event.type] = self.counts.get(event.type, 0) + 1
        if event.ts:
            self._last_ts = (
                event.ts
                if self._last_ts is None
                else max(self._last_ts, event.ts)
            )
        kind = event.type
        if kind == "suite_started":
            self.suites_started += 1
            self.total += int(event.payload.get("n_tasks", 0) or 0)
            if self._started_ts is None and event.ts:
                self._started_ts = event.ts
            return
        if kind == "suite_finished":
            self.suites_finished += 1
            return
        label = event.label
        if not label:
            if kind == "cache_hit":
                self.cached += 1
            return
        if kind not in _LIFECYCLE_KINDS:
            # Enrichment events (sanitizer, cache_miss/store, flight_dump)
            # refresh an existing task's liveness but never invent a row.
            state = self._state.get(label)
            if state is not None:
                state["last_seen"] = max(state["last_seen"], event.ts)
            return
        state = self._state.setdefault(
            label, {"status": "pending", "attempt": 0, "last_seen": event.ts}
        )
        state["last_seen"] = max(state["last_seen"], event.ts)
        if kind == "task_started":
            state["status"] = "running"
            state["attempt"] = event.attempt or 0
        elif kind == "task_finished":
            if state["status"] not in ("done", "cached"):
                state["status"] = "done"
                self.done += 1
        elif kind in ("task_failed", "attempt_failed"):
            # The executor may still retry; only quarantine is final.
            if state["status"] not in ("done", "cached", "quarantined"):
                state["status"] = "pending"
        elif kind == "quarantined":
            if state["status"] != "quarantined":
                state["status"] = "quarantined"
                self.failed += 1
        elif kind == "cache_hit":
            self.cached += 1
            if state["status"] not in ("done", "cached"):
                state["status"] = "cached"
                self.done += 1

    @property
    def running(self) -> int:
        return sum(
            1 for s in self._state.values() if s["status"] == "running"
        )

    def eta_seconds(self) -> Optional[float]:
        if (
            self.done <= 0
            or self._started_ts is None
            or self._last_ts is None
        ):
            return None
        elapsed = self._last_ts - self._started_ts
        if elapsed <= 0:
            return None
        remaining = max(0, self.total - self.done - self.failed)
        return remaining * (elapsed / self.done)

    def status_line(self) -> str:
        eta = self.eta_seconds()
        eta_text = f"{eta:.0f}s" if eta is not None else "?"
        return (
            f"status: {self.done}/{self.total} done, "
            f"{self.running} running, {self.failed} failed, "
            f"{self.cached} cached, ETA {eta_text}"
        )

    def rows(self) -> List[List[Any]]:
        """Per-task table rows for ``repro top``: label/status/attempt/age."""
        now = self._last_ts or 0.0
        out = []
        for label in sorted(self._state):
            state = self._state[label]
            age = max(0.0, now - state["last_seen"]) if state["last_seen"] else 0.0
            out.append([label, state["status"], state["attempt"], f"{age:.1f}s"])
        return out


# ---------------------------------------------------------------------------
# the bus
# ---------------------------------------------------------------------------


class EventBus:
    """Process-wide publish point: stamps, counts, persists, fans out.

    ``emit`` assigns the monotonic ``seq`` and default wall/pid stamps,
    feeds the flight-recorder ring and the status aggregator, appends to
    the ledger (all under one lock, so ledger order == seq order within
    this process), then notifies subscribers.  A subscriber exception is
    swallowed: telemetry must never take the evaluation down.
    """

    def __init__(
        self,
        ledger: Optional[EventLedger] = None,
        flight: Optional[FlightRecorder] = None,
        status: Optional[StatusAggregator] = None,
    ) -> None:
        self.ledger = ledger
        self.flight = flight
        self.status = status
        self.counts: Dict[str, int] = {}
        self._seq = 0
        self._lock = threading.Lock()
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []

    @property
    def flight_dir(self) -> Optional[str]:
        """Where flight recordings land: next to the ledger, if any."""
        if self.ledger is None:
            return None
        return os.path.dirname(os.path.abspath(self.ledger.path))

    def subscribe(self, fn: Callable[[TelemetryEvent], None]) -> None:
        self._subscribers.append(fn)

    def emit(
        self,
        type: str,
        *,
        label: str = "",
        config: str = "",
        workload: str = "",
        run: str = "",
        attempt: Optional[int] = None,
        cycle: Optional[int] = None,
        ts: Optional[float] = None,
        pid: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> TelemetryEvent:
        if not config and not workload and label:
            config, _, workload = label.partition("/")
        event = TelemetryEvent(
            type=str(type),
            ts=float(ts) if ts is not None else time.time(),
            pid=int(pid) if pid is not None else os.getpid(),
            run=run or "",
            config=config or "",
            workload=workload or "",
            attempt=attempt,
            cycle=cycle,
            payload=dict(payload) if payload else {},
        )
        with self._lock:
            self._seq += 1
            event.seq = self._seq
            self.counts[event.type] = self.counts.get(event.type, 0) + 1
            if self.flight is not None:
                self.flight.record(event)
            if self.status is not None:
                self.status.handle(event)
            if self.ledger is not None:
                self.ledger.append(event)
        for fn in list(self._subscribers):
            try:
                fn(event)
            except Exception:  # noqa: BLE001 — subscribers never kill a run
                logger.debug("event subscriber failed", exc_info=True)
        return event

    def close(self) -> None:
        if self.ledger is not None:
            self.ledger.close()


def open_bus(
    events_path: Optional[str] = None,
    flight_capacity: Optional[int] = None,
) -> EventBus:
    """A ready-to-use bus: ledger (if a path is given) + flight + status."""
    ledger = EventLedger(events_path) if events_path else None
    return EventBus(
        ledger=ledger,
        flight=FlightRecorder(capacity=flight_capacity),
        status=StatusAggregator(),
    )


# -- process-wide slot ------------------------------------------------------

_process_bus: Optional[Any] = None


def get_event_bus() -> Optional[Any]:
    """The installed process bus (an :class:`EventBus` or a worker relay)."""
    return _process_bus


def set_event_bus(bus: Optional[Any]) -> Optional[Any]:
    """Install the process bus; returns the previous one for restoration."""
    global _process_bus
    previous = _process_bus
    _process_bus = bus
    return previous


# ---------------------------------------------------------------------------
# engine plumbing: worker relay, monitor sink, attempt observer
# ---------------------------------------------------------------------------


class WorkerEventRelay:
    """Worker-side stand-in for the bus: forwards over the progress queue.

    Installed (via :func:`set_event_bus`) around each task attempt by
    ``execute_task_attempt`` when events are on, so worker-side
    publishers — the sanitizer path in ``run_single`` — discover "the
    bus" exactly like parent-side code does.  Each emit crosses the queue
    as one opaque ``("bus", ...)`` progress event carrying the worker's
    own pid/ts stamps; the parent bus assigns ``seq`` on arrival.
    """

    def __init__(self, queue: Any, label: str, attempt: Optional[int] = None):
        self.queue = queue
        self.label = label
        self.attempt = attempt

    def emit(
        self,
        type: str,
        *,
        label: str = "",
        config: str = "",
        workload: str = "",
        run: str = "",
        attempt: Optional[int] = None,
        cycle: Optional[int] = None,
        ts: Optional[float] = None,
        pid: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        data = {
            "type": str(type),
            "label": label or self.label,
            "config": config,
            "workload": workload,
            "run": run,
            "attempt": self.attempt if attempt is None else attempt,
            "cycle": cycle,
            "ts": float(ts) if ts is not None else time.time(),
            "pid": int(pid) if pid is not None else os.getpid(),
            "payload": dict(payload) if payload else {},
        }
        try:
            self.queue.put(("bus", self.label, data["pid"], data["ts"], {"event": data}))
        except Exception:  # noqa: BLE001 — telemetry never kills a worker
            pass


#: heartbeat progress-event kind -> canonical event type
_KIND_TO_TYPE = {
    "started": "task_started",
    "heartbeat": "heartbeat",
    "finished": "task_finished",
    "failed": "task_failed",
}


def progress_event_sink(
    bus: EventBus, label_keys: Optional[Dict[str, str]] = None
) -> Callable[[Any], None]:
    """A ``HeartbeatMonitor.sink`` translating progress events to the bus.

    The monitor invokes the sink once per *queue-drained* event — the
    parent-side ``note_cache_hit``/``note_quarantined`` shortcuts bypass
    it, which is what keeps cache and quarantine events exactly-once
    (they are published by the cache's ``publisher`` hook and the
    :class:`EventObserver` respectively).
    """
    keys = label_keys or {}

    def sink(progress_event: Any) -> None:
        try:
            kind, label, pid, when, payload = progress_event
        except (TypeError, ValueError):
            return
        if kind == "bus":
            data = dict(payload.get("event") or {})
            type_ = data.pop("type", "") or "worker_event"
            if not data.get("run"):
                data["run"] = keys.get(data.get("label") or label, "")
            bus.emit(type_, **data)
            return
        type_ = _KIND_TO_TYPE.get(kind)
        if type_ is None:
            return
        extra = {k: v for k, v in payload.items() if k != "attempt"}
        bus.emit(
            type_,
            label=label,
            run=keys.get(label, ""),
            attempt=payload.get("attempt"),
            ts=when,
            pid=pid,
            payload=extra,
        )

    return sink


class EventObserver:
    """An ``AttemptObserver`` publishing executor verdicts onto the bus.

    Covers what workers cannot report about themselves: timeouts, pool
    breaks, validation rejects (``attempt_failed``), retry backoffs, and
    quarantines — and triggers the flight-recorder dump for each, so a
    crash artifact exists even when the worker died without a word.

    ``standalone=True`` additionally publishes ``task_started`` /
    ``task_finished`` from the parent-side attempt window — for callers
    (the guarded CLI paths) whose workers carry no progress queue.
    """

    def __init__(
        self,
        bus: EventBus,
        flight_dir: Optional[str] = None,
        label_keys: Optional[Dict[str, str]] = None,
        standalone: bool = False,
    ) -> None:
        self.bus = bus
        self.flight_dir = flight_dir
        self.label_keys = label_keys or {}
        self.standalone = standalone
        #: label -> flight-recording artifact path (folds into FaultReport)
        self.flight_paths: Dict[str, str] = {}

    # -- AttemptObserver protocol ------------------------------------------

    def attempt_started(self, label: str, attempt: int) -> None:
        if self.standalone:
            self.bus.emit(
                "task_started",
                label=label,
                run=self.label_keys.get(label, ""),
                attempt=attempt,
            )

    def attempt_finished(
        self, label: str, attempt: int, ok: bool, error: Optional[str] = None
    ) -> None:
        if ok:
            if self.standalone:
                self.bus.emit(
                    "task_finished",
                    label=label,
                    run=self.label_keys.get(label, ""),
                    attempt=attempt,
                )
            return
        reason = error or "attempt failed"
        self.bus.emit(
            "attempt_failed",
            label=label,
            run=self.label_keys.get(label, ""),
            attempt=attempt,
            payload={"error": reason},
        )
        self._dump(label, attempt, reason)

    def backoff(
        self, attempt: int, started: float, ended: float, pending: int
    ) -> None:
        self.bus.emit(
            "backoff",
            attempt=attempt,
            ts=ended,
            payload={
                "seconds": round(ended - started, 6),
                "pending": pending,
            },
        )

    # -- engine extras ------------------------------------------------------

    def quarantined(self, label: str, attempts: int, error: str) -> None:
        """Publish a final quarantine verdict (called once per task)."""
        self.bus.emit(
            "quarantined",
            label=label,
            run=self.label_keys.get(label, ""),
            attempt=attempts,
            payload={"error": error},
        )
        self._dump(label, attempts, f"quarantined: {error}")

    def _dump(self, label: str, attempt: int, reason: str) -> None:
        if self.flight_dir is None or self.bus.flight is None:
            return
        path = os.path.join(self.flight_dir, flight_artifact_name(label))
        try:
            self.bus.flight.dump(path, reason=reason, label=label, attempt=attempt)
        except OSError:
            logger.warning("could not write flight recording %s", path)
            return
        self.flight_paths[label] = path
        self.bus.emit(
            "flight_dump",
            label=label,
            payload={"path": path, "reason": reason},
        )


class _MultiObserver:
    """Fan one AttemptObserver stream out to several observers."""

    def __init__(self, observers: Sequence[Any]) -> None:
        self.observers = list(observers)

    def attempt_started(self, label: str, attempt: int) -> None:
        for obs in self.observers:
            obs.attempt_started(label, attempt)

    def attempt_finished(
        self, label: str, attempt: int, ok: bool, error: Optional[str] = None
    ) -> None:
        for obs in self.observers:
            obs.attempt_finished(label, attempt, ok, error)

    def backoff(
        self, attempt: int, started: float, ended: float, pending: int
    ) -> None:
        for obs in self.observers:
            obs.backoff(attempt, started, ended, pending)


def compose_observers(*observers: Optional[Any]) -> Optional[Any]:
    """Combine observers, dropping Nones; None when nothing remains."""
    active = [obs for obs in observers if obs is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]
    return _MultiObserver(active)
