"""Live progress heartbeats for the evaluation engine.

Workers emit small picklable progress events — task started (attempt N),
periodic heartbeats while simulating, finished/failed — onto a
``multiprocessing`` queue; the parent's :class:`HeartbeatMonitor` drains
the queue, renders a throttled one-line status (done/running/failed/
cached/ETA), and flags tasks whose heartbeat has gone *stale*: the
worker stopped beating (killed, wedged interpreter, dead pulse thread)
but the executor's ``REPRO_TASK_TIMEOUT`` has not fired yet.  Stale
flags are advisory early warnings — they feed the
:class:`~repro.analysis.parallel.FaultReport` (``heartbeat_stale`` /
``stale_tasks``) without failing the evaluation; the retry/timeout
machinery still decides the task's fate.

Everything here is opt-in (``run_suite(..., progress=True)`` or
``REPRO_PROGRESS=1``) and touches no architectural state: a monitored
run's ``SimStats.signature()`` is identical to an unmonitored one.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL",
    "HeartbeatMonitor",
    "HeartbeatPulse",
    "emit_event",
    "heartbeat_interval_from_env",
    "stale_after_from_env",
    "stream_supports_rewrite",
]

#: Seconds between worker heartbeats (``REPRO_HEARTBEAT_INTERVAL``).
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: A ProgressEvent is (kind, label, pid, epoch_seconds, payload) — plain
#: tuples so they pickle through any multiprocessing queue flavor.
ProgressEvent = Tuple[str, str, int, float, Dict[str, Any]]

EVENT_KINDS = (
    "started",      # worker began attempt N of a task
    "heartbeat",    # worker still alive inside a task
    "finished",     # worker completed a task attempt successfully
    "failed",       # worker attempt raised (it will be retried/quarantined)
    "cache_hit",    # parent served the task from the run cache
    "quarantined",  # parent gave up on the task after every attempt
    "bus",          # opaque relayed telemetry event (repro.obs.events)
)


def stream_supports_rewrite(stream: Any) -> bool:
    """Whether the status line may rewrite itself in place (``\\r``).

    Only an interactive terminal gets carriage-return rewriting; piped
    output, CI logs, ``NO_COLOR`` (https://no-color.org — users asking
    for dumb output), and ``TERM=dumb`` all get plain newline-delimited
    lines so the log stays greppable.
    """
    if os.environ.get("NO_COLOR"):
        return False
    if os.environ.get("TERM", "").strip().lower() == "dumb":
        return False
    isatty = getattr(stream, "isatty", None)
    try:
        return bool(isatty and isatty())
    except Exception:  # noqa: BLE001 — exotic stream objects
        return False


def _positive_float_env(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be a number of seconds, got {raw!r}"
        ) from None
    return value if value > 0 else default


def heartbeat_interval_from_env() -> float:
    return _positive_float_env(
        "REPRO_HEARTBEAT_INTERVAL", DEFAULT_HEARTBEAT_INTERVAL
    )


def stale_after_from_env(
    interval: float, task_timeout: Optional[float] = None
) -> float:
    """When a silent running task counts as stale.

    ``REPRO_HEARTBEAT_STALE`` overrides; otherwise half the task timeout
    (so the flag raises *before* the executor's timeout fires, which is
    the point) floored at two beats, or four beats when no timeout is
    configured.
    """
    override = os.environ.get("REPRO_HEARTBEAT_STALE")
    if override is not None and override.strip():
        return _positive_float_env("REPRO_HEARTBEAT_STALE", 4.0 * interval)
    if task_timeout is not None and task_timeout > 0:
        return max(2.0 * interval, 0.5 * task_timeout)
    return 4.0 * interval


def emit_event(queue: Any, kind: str, label: str, **payload: Any) -> None:
    """Best-effort put: progress must never take a worker down."""
    try:
        queue.put((kind, label, os.getpid(), time.time(), payload))
    except Exception:  # noqa: BLE001 — broken queue at shutdown, full, etc.
        pass


class HeartbeatPulse(threading.Thread):
    """Worker-side daemon thread beating while a task runs.

    The pulse proves the *process* is alive; a wedged worker whose
    interpreter still schedules threads keeps beating, but an OOM-killed
    or ``os._exit``-ed worker goes silent — exactly the case the parent
    wants to flag before its task timeout expires.
    """

    def __init__(self, queue: Any, label: str, interval: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{label}")
        self.queue = queue
        self.label = label
        self.interval = interval
        self._done = threading.Event()

    def run(self) -> None:
        while not self._done.wait(self.interval):
            emit_event(self.queue, "heartbeat", self.label)

    def stop(self) -> None:
        self._done.set()
        self.join(timeout=2.0)


class HeartbeatMonitor:
    """Parent-side progress state + throttled status rendering.

    Drive it either with :meth:`start`/:meth:`close` (a daemon thread
    pumps the queue every ``poll`` seconds) or by calling :meth:`pump`
    manually (tests use a fake ``clock``).  Parent-side events — cache
    hits, quarantines — go through :meth:`note_cache_hit` /
    :meth:`note_quarantined`; everything is serialized under one lock.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        stale_after: float = 4.0 * DEFAULT_HEARTBEAT_INTERVAL,
        throttle: float = 0.5,
        clock=time.time,
        poll: float = 0.2,
    ) -> None:
        self.total = total
        self.stream = stream
        self.stale_after = stale_after
        self.throttle = throttle
        self.clock = clock
        self.poll = poll
        self.queue: Optional[Any] = None
        #: Optional per-event tap (``repro.obs.events.progress_event_sink``):
        #: invoked once for every event drained from the queue — not for
        #: the parent-side note_* shortcuts, which have their own
        #: publishers.  Failures are swallowed; progress must never die.
        self.sink: Optional[Callable[[ProgressEvent], None]] = None
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.stale_tasks: List[str] = []
        self._state: Dict[str, Dict[str, Any]] = {}
        self._stale_flagged: set = set()
        self._lock = threading.Lock()
        self._last_render = 0.0
        self._last_line = ""
        self._rewrite: Optional[bool] = None  # decided at first render
        self._line_width = 0
        self._started_at = clock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- wiring -------------------------------------------------------------

    def attach_queue(self, queue: Any) -> None:
        self.queue = queue

    def start(self) -> None:
        """Begin pumping the queue from a daemon thread."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="heartbeat-monitor"
        )
        self._thread.start()

    def close(self) -> None:
        """Stop the pump thread, drain what's left, render a final line.

        Safe on any termination path — ``KeyboardInterrupt`` mid-suite, a
        Manager whose process already died, a closed stream: every step
        is guarded, the final summary line is *always* attempted (even
        when throttling suppressed every intermediate render), and a
        rewriting status line is terminated with a newline so the shell
        prompt does not land mid-line.
        """
        self._stop.set()
        thread = self._thread
        self._thread = None
        if thread is not None:
            try:
                thread.join(timeout=2.0)
            except Exception:  # noqa: BLE001 — interpreter tearing down
                pass
        try:
            self.pump()
        except Exception:  # noqa: BLE001 — dead manager queue at shutdown
            pass
        self._render(force=True)
        if self._rewrite and self.stream is not None:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except Exception:  # noqa: BLE001 — closed stream
                pass

    def _loop(self) -> None:
        while not self._stop.wait(self.poll):
            self.pump()

    # -- event intake -------------------------------------------------------

    def pump(self) -> None:
        """Drain pending events, refresh staleness, maybe render."""
        queue = self.queue
        if queue is not None:
            while True:
                try:
                    event = queue.get_nowait()
                except Exception:  # noqa: BLE001 — Empty, broken proxy, ...
                    break
                self._handle(event)
                if self.sink is not None:
                    try:
                        self.sink(event)
                    except Exception:  # noqa: BLE001 — telemetry is advisory
                        pass
        with self._lock:
            self._check_stale()
        self._render()

    def note_cache_hit(self, label: str) -> None:
        self._handle(("cache_hit", label, os.getpid(), self.clock(), {}))

    def note_quarantined(self, label: str) -> None:
        self._handle(("quarantined", label, os.getpid(), self.clock(), {}))

    def _handle(self, event: ProgressEvent) -> None:
        try:
            kind, label, pid, _when, payload = event
        except (TypeError, ValueError):
            return  # malformed event: progress is advisory, never fatal
        now = self.clock()
        with self._lock:
            state = self._state.setdefault(
                label, {"status": "pending", "attempt": 0, "last_seen": now}
            )
            state["last_seen"] = now
            state["pid"] = pid
            if kind == "started":
                state["status"] = "running"
                state["attempt"] = payload.get("attempt", 0)
            elif kind == "heartbeat":
                pass  # last_seen refresh is the whole message
            elif kind == "finished":
                if state["status"] != "done":
                    state["status"] = "done"
                    self.done += 1
            elif kind == "failed":
                # The attempt failed; the executor decides whether it
                # retries, so the task goes back to pending, not failed.
                state["status"] = "pending"
            elif kind == "cache_hit":
                if state["status"] != "done":
                    state["status"] = "done"
                    self.done += 1
                    self.cache_hits += 1
            elif kind == "quarantined":
                if state["status"] != "quarantined":
                    state["status"] = "quarantined"
                    self.failed += 1

    def _check_stale(self) -> None:
        now = self.clock()
        for label, state in self._state.items():
            if state["status"] != "running" or label in self._stale_flagged:
                continue
            if now - state["last_seen"] > self.stale_after:
                self._stale_flagged.add(label)
                self.stale_tasks.append(label)

    # -- rendering ----------------------------------------------------------

    @property
    def running(self) -> int:
        with self._lock:
            return sum(
                1 for s in self._state.values() if s["status"] == "running"
            )

    def eta_seconds(self) -> Optional[float]:
        elapsed = self.clock() - self._started_at
        if self.done <= 0 or elapsed <= 0:
            return None
        remaining = max(0, self.total - self.done - self.failed)
        return remaining * (elapsed / self.done)

    def status_line(self) -> str:
        eta = self.eta_seconds()
        eta_text = f"{eta:.0f}s" if eta is not None else "?"
        line = (
            f"progress: {self.done}/{self.total} done, "
            f"{self.running} running, {self.failed} failed, "
            f"{self.cache_hits} cached, ETA {eta_text}"
        )
        if self.stale_tasks:
            line += (
                f", {len(self.stale_tasks)} stale "
                f"({', '.join(self.stale_tasks[:3])}"
                + (", ..." if len(self.stale_tasks) > 3 else "")
                + ")"
            )
        return line

    def _render(self, force: bool = False) -> None:
        if self.stream is None:
            return
        now = self.clock()
        if not force and now - self._last_render < self.throttle:
            return
        line = self.status_line()
        if not force and line == self._last_line:
            return
        if self._rewrite is None:
            self._rewrite = stream_supports_rewrite(self.stream)
        self._last_render = now
        self._last_line = line
        try:
            if self._rewrite:
                # Rewrite in place, blank-padding any residue of a longer
                # previous line; close() appends the terminating newline.
                padding = " " * max(0, self._line_width - len(line))
                self.stream.write("\r" + line + padding)
                self.stream.flush()
                self._line_width = len(line)
            else:
                print(line, file=self.stream, flush=True)
        except Exception:  # noqa: BLE001 — closed stream must not kill a run
            pass
