#!/usr/bin/env python3
"""Search the Entangling design space and print the Pareto front.

The paper fixes one design point per storage budget (Entangling-2K/4K/8K,
Figure 6); this driver searches the joint knob space instead — table
geometry, history size, merge distance, confidence-counter width,
compression-mode whitelist, and PQ/MSHR sizing — scoring every candidate
on geomean normalized IPC, storage bits, and normalized energy at once,
and reports the nondominated frontier.

The search is deterministic in ``--seed`` (equal seeds reproduce the
front bit-for-bit) and resumable: with ``--cache-dir`` every simulation
persists to a disk run cache and a checkpoint manifest records finished
pairs, so a killed search rerun with ``--resume`` re-simulates only what
never finished.

Usage::

    python examples/tune_pareto.py [--strategy genetic|random|grid]
        [--population N] [--generations N] [--objectives ipc,storage,energy]
        [--per-category N] [--instructions N] [--seed N] [--jobs N]
        [--cache-dir DIR] [--resume] [--out PREFIX]
"""

import argparse
import json
import os
import sys

from repro.analysis.checkpoint import CheckpointManifest
from repro.analysis.export import export_pareto_csv
from repro.analysis.runcache import RunCache
from repro.analysis.tune import OBJECTIVES, make_tuner
from repro.check.artifacts import atomic_write_text
from repro.workloads import cvp_suite


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--strategy", default="genetic",
                        choices=("genetic", "random", "grid"))
    parser.add_argument("--population", type=int, default=12)
    parser.add_argument("--generations", type=int, default=4)
    parser.add_argument("--objectives", default="ipc,storage,energy",
                        help=f"comma-separated; available: "
                             f"{', '.join(sorted(OBJECTIVES))}")
    parser.add_argument("--per-category", type=int, default=1)
    parser.add_argument("--instructions", type=int, default=None)
    parser.add_argument("--train-fraction", type=float, default=0.75)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation fan-out")
    parser.add_argument("--cache-dir", default=None,
                        help="persist results + checkpoint here (resumable)")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--out", default=None, metavar="PREFIX",
                        help="write the front to PREFIX.json / PREFIX.csv")
    args = parser.parse_args()

    if args.resume and not args.cache_dir:
        parser.error("--resume needs --cache-dir")

    suite = cvp_suite(per_category=args.per_category,
                      n_instructions=args.instructions)
    cache = RunCache(disk_dir=args.cache_dir)
    checkpoint = None
    if args.cache_dir:
        checkpoint = CheckpointManifest(
            os.path.join(args.cache_dir, "tune_checkpoint.json"),
            resume=args.resume,
        )

    kwargs = {}
    if args.strategy == "genetic":
        kwargs = dict(population=args.population,
                      generations=args.generations)
    elif args.strategy == "random":
        kwargs = dict(samples=args.population * args.generations)
    tuner = make_tuner(
        args.strategy, suite,
        objectives=[o.strip() for o in args.objectives.split(",") if o.strip()],
        seed=args.seed, train_fraction=args.train_fraction,
        cache=cache, checkpoint=checkpoint, jobs=args.jobs, **kwargs,
    )
    print(f"searching with {args.strategy} (seed {args.seed}) over "
          f"{len(tuner.train)} training / {len(tuner.test)} held-out "
          f"workloads...")
    result = tuner.search()

    print()
    print(result.render())
    print(result.cache_line)
    if result.checkpoint_line:
        print(result.checkpoint_line)

    if args.out:
        atomic_write_text(args.out + ".json",
                          json.dumps(result.to_dict(), indent=2) + "\n")
        export_pareto_csv(result, args.out + ".csv")
        print(f"front written to {args.out}.json / {args.out}.csv",
              file=sys.stderr)
    return 0 if result.front else 1


if __name__ == "__main__":
    sys.exit(main())
