#!/usr/bin/env python3
"""Compare the whole prefetcher field on a CVP-like suite (Figure 6 style).

Runs every evaluated configuration — NextLine, SN4L, MANA, RDIP, D-JOLT,
FNL+MMA, EPI, Entangling 2K/4K/8K, enlarged L1I caches, and the Ideal
prefetcher — over a small suite and prints geometric-mean speedup against
storage budget.

Usage::

    python examples/compare_prefetchers.py [--per-category N]
"""

import argparse

from repro.analysis.figures import FIG6_CONFIGS, fig6_ipc_vs_storage, render_fig6
from repro.workloads import cvp_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--per-category", type=int, default=1,
        help="workloads per CVP category (default 1; the paper used ~240)",
    )
    args = parser.parse_args()

    suite = cvp_suite(per_category=args.per_category)
    names = ", ".join(spec.name for spec in suite)
    print(f"suite: {names}")
    print(f"running {len(FIG6_CONFIGS)} configurations x {len(suite)} workloads "
          f"(this takes a few minutes)...")
    rows, evaluation = fig6_ipc_vs_storage(suite, FIG6_CONFIGS)

    print()
    print(render_fig6(rows))

    best_realistic = max(
        (r for r in rows if r.config != "ideal"), key=lambda r: r.geomean_speedup
    )
    print()
    print(f"best realistic configuration: {best_realistic.config} "
          f"({(best_realistic.geomean_speedup - 1) * 100:.1f}% speedup at "
          f"{best_realistic.storage_kb:.1f} KB)")


if __name__ == "__main__":
    main()
