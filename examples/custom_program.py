#!/usr/bin/env python3
"""Build a custom program with the CFG API and study its prefetchability.

Shows the lowest-level public API: hand-constructing a control-flow graph
with :class:`ProgramBuilder`, interpreting it into a trace, and running
both the look-ahead oracle and the Entangling prefetcher on it.

The program models a bytecode-interpreter loop: one dispatch site
indirect-calling one of 240 opcode handlers.  Megamorphic dispatch from a
single site is a deliberately *hard* case for any correlation prefetcher
(the paper's entangled-destination arrays hold at most 6 destinations per
source), so this example is useful for exploring where the technique's
limits are — contrast it with the dispatcher-structured server workloads
of ``repro.workloads.generators``, where sources are diverse.

Usage::

    python examples/custom_program.py
"""

from repro import EntanglingPrefetcher, NullPrefetcher, simulate
from repro.analysis.oracle import run_oracle
from repro.workloads import ProgramBuilder, generate_trace
from repro.workloads.cfg import Terminator, TermKind


def build_interpreter_program():
    builder = ProgramBuilder(entry="vm_loop")
    opcodes = [f"op_{i:03d}" for i in range(240)]
    builder.function("vm_loop")
    builder.block(
        "fetch_decode",
        12,
        Terminator(
            TermKind.INDIRECT_CALL,
            # Zipf-like opcode popularity: real bytecode streams are
            # dominated by a handful of hot opcodes.
            candidates=[(op, 12.0 / (1 + i % 48)) for i, op in enumerate(opcodes)],
        ),
    )
    builder.block("loop_back", 4, Terminator(TermKind.JUMP, target="fetch_decode"))

    for i, op in enumerate(opcodes):
        builder.function(op)
        # Handlers vary from tiny (ALU ops) to large (string/vector ops).
        body = 10 + 13 * (i % 11)
        builder.block("work", body, Terminator(TermKind.FALLTHROUGH))
        builder.block(
            "maybe_slow_path",
            8,
            Terminator(TermKind.COND, target="slow", taken_prob=0.15),
        )
        builder.block("done", 4, Terminator(TermKind.RETURN))
        builder.block("slow", 40, Terminator(TermKind.RETURN))
    return builder.build()


def main() -> None:
    program = build_interpreter_program()
    print(f"built {program}: {program.code_bytes // 1024} KB of code")

    trace = generate_trace(
        program, n_instructions=150_000, name="vm", category="int", seed=5
    )
    print(f"trace: {len(trace)} instructions, "
          f"{trace.footprint_lines()} lines touched")

    # How far ahead would a fixed look-ahead prefetcher have to run?
    oracle = run_oracle(trace)
    print("\nfixed look-ahead oracle (Figure 1 style):")
    for distance in (1, 2, 4, 8):
        print(f"  distance {distance}: "
              f"{oracle.timely_fraction[distance]:.1%} of misses timely")

    warmup = len(trace) // 2
    baseline = simulate(trace, NullPrefetcher(), warmup_instructions=warmup).stats
    entangling = simulate(
        trace, EntanglingPrefetcher(), warmup_instructions=warmup
    ).stats
    from repro.prefetchers import NextLinePrefetcher

    next_line = simulate(
        trace, NextLinePrefetcher(), warmup_instructions=warmup
    ).stats

    print("\nprefetching the interpreter loop (a megamorphic-dispatch hard case):")
    print(f"  {'config':14s} {'speedup':>8s} {'coverage':>9s} {'timely/late/wrong':>18s}")
    for name, stats in (("Entangling-4K", entangling), ("NextLine", next_line)):
        print(f"  {name:14s} {stats.ipc / baseline.ipc:8.3f} "
              f"{stats.coverage_vs(baseline):9.1%} "
              f"{stats.useful_prefetches:6d}/{stats.late_prefetches}/"
              f"{stats.wrong_prefetches}")


if __name__ == "__main__":
    main()
