#!/usr/bin/env python3
"""Deep-dive into a server workload: the paper's motivating scenario.

Server applications have instruction footprints far larger than the L1I
(Section I).  This example:

1. generates a large-footprint server workload;
2. runs the look-ahead oracle (Figures 1-2) showing that no fixed
   look-ahead distance serves all misses;
3. compares the Figure 11 ablation variants of the Entangling prefetcher;
4. prints the Entangling-internal statistics (Figures 12-15).

Usage::

    python examples/server_workload_study.py
"""

from repro import NullPrefetcher, simulate
from repro.analysis.oracle import run_oracle
from repro.core.variants import ABLATION_NAMES, make_ablation
from repro.workloads import WorkloadSpec, make_workload


def main() -> None:
    spec = WorkloadSpec(
        name="study_srv", category="srv", seed=77, n_instructions=300_000
    )
    trace = make_workload(spec)
    warmup = spec.n_instructions // 2
    print(f"workload {spec.name}: footprint "
          f"{trace.footprint_lines() * 64 // 1024} KB")

    # -- Figures 1-2: the fixed look-ahead oracle --------------------------
    print("\n== look-ahead oracle (Figures 1-2) ==")
    oracle = run_oracle(trace)
    print("distance:        " + " ".join(f"{d:5d}" for d in range(1, 11)))
    print("timely fraction: " + " ".join(
        f"{oracle.timely_fraction[d]:5.2f}" for d in range(1, 11)))
    print("accuracy:        " + " ".join(
        f"{oracle.accuracy[d]:5.2f}" for d in range(1, 11)))
    print(f"misses analyzed: {oracle.total_misses}")

    # -- Figure 11: ablation of the Entangling mechanisms -------------------
    print("\n== ablation (Figure 11) ==")
    baseline = simulate(trace, NullPrefetcher(), warmup_instructions=warmup).stats
    print(f"baseline IPC = {baseline.ipc:.3f}")
    for variant in ABLATION_NAMES:
        prefetcher = make_ablation(variant, entries=4096)
        stats = simulate(trace, prefetcher, warmup_instructions=warmup).stats
        print(f"  {variant:14s} speedup={stats.ipc / baseline.ipc:6.3f} "
              f"coverage={stats.coverage_vs(baseline):6.1%} "
              f"accuracy={stats.accuracy:6.1%}")

    # -- Figures 12-15: Entangling internals --------------------------------
    print("\n== Entangling internals (Figures 12-15) ==")
    prefetcher = make_ablation("BBEntBB-Merge", entries=4096)
    simulate(trace, prefetcher, warmup_instructions=warmup)
    es = prefetcher.estats
    fmt = prefetcher.table.stats.format_bits
    total = sum(fmt.values()) or 1
    formats = "  ".join(
        f"{bits}b:{count / total:.0%}" for bits, count in sorted(fmt.items())
    )
    print(f"  destination formats:      {formats}")
    print(f"  avg destinations per hit: {es.avg_destinations_per_hit:.2f}")
    print(f"  avg source block size:    {es.avg_src_bb_size:.2f}")
    print(f"  avg destination block:    {es.avg_dst_bb_size:.2f}")
    print(f"  prefetches per hit:       {es.avg_prefetches_per_hit:.1f}")


if __name__ == "__main__":
    main()
