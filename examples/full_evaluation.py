#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Prints the complete text report recorded in EXPERIMENTS.md.  With the
default scale (one workload per CVP category) this takes ~10 minutes on
one core; pass ``--per-category N`` for a larger sweep and ``--jobs N``
(or ``REPRO_JOBS=N``) to fan simulations out over worker processes.

All figure drivers share one run cache, so each unique (configuration,
workload) pair is simulated exactly once even though several figures
sweep overlapping fields; a final summary reports the unique simulation
count, cache hits, and the wall-clock the cache saved.

With ``--cache-dir`` the run is also *resumable*: a checkpoint manifest
(``<cache-dir>/checkpoint.json`` unless ``--checkpoint`` overrides it)
records every finished (configuration, workload) pair, and ``--resume``
re-simulates only the pairs the interrupted run never completed — the
rest are served from the on-disk cache.  Worker faults are retried
(``--retries`` / ``--task-timeout``, or the ``REPRO_TASK_*`` env vars)
and persistent failures are quarantined and reported instead of killing
the evaluation.

With ``--trace PATH`` the whole evaluation is span-traced: every suite,
cache lookup, executor attempt, retry backoff, and worker-side pipeline
stage lands in one merged Chrome trace-event JSON (load it at
https://ui.perfetto.dev).  ``--progress`` renders a live status line
from worker heartbeats (equivalent to ``REPRO_PROGRESS=1``).

With ``--events PATH`` every figure driver appends its telemetry to one
JSONL run ledger (equivalent to ``REPRO_EVENTS=PATH``) — inspect it with
``python -m repro events PATH --summary`` or watch it live from another
terminal with ``python -m repro top PATH``.  ``--metrics-port N`` serves
live ``repro_engine_*`` gauges as Prometheus text on
``http://127.0.0.1:N/metrics`` for the duration of the run.

Usage::

    python examples/full_evaluation.py [--per-category N] [--jobs N]
        [--cache-dir DIR] [--resume] [--trace FILE] [--progress]
        [--events FILE] [--metrics-port N] [--out FILE]
"""

import argparse
import os
import sys
import time

from repro.analysis.figures import (
    CURVE_CONFIGS,
    FIG6_CONFIGS,
    FIG16_CONFIGS,
    TAB4_CONFIGS,
    fig1_fig2_oracle,
    fig6_ipc_vs_storage,
    fig11_ablation,
    fig16_cloudsuite,
    fig_microservice,
    figs12_to_15_internals,
    per_workload_curves,
    render_curves,
    render_fig1,
    render_fig2,
    render_fig6,
    render_fig11,
    render_fig16,
    render_fig_microservice,
    render_figs12_to_15,
    render_sec4e,
    render_tab1_tab2,
    render_tab4,
    sec4e_physical,
    tab4_energy,
)
from repro.analysis.checkpoint import CheckpointManifest, set_checkpoint
from repro.analysis.experiments import resolve_jobs, run_suite
from repro.analysis.runcache import RunCache, set_run_cache
from repro.workloads import cloudsuite_suite, cvp_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--per-category", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS env or 1)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="persist simulation results here (reused on rerun)")
    parser.add_argument("--checkpoint", type=str, default=None,
                        help="checkpoint manifest path (default: "
                             "<cache-dir>/checkpoint.json)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the checkpoint manifest: pairs it "
                             "records as done are served from the disk cache "
                             "and only missing pairs re-simulate")
    parser.add_argument("--retries", type=int, default=None,
                        help="retries per failed worker task "
                             "(default: REPRO_TASK_RETRIES or 2)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-task timeout in seconds "
                             "(default: REPRO_TASK_TIMEOUT or none)")
    parser.add_argument("--trace", type=str, default=None, metavar="PATH",
                        help="write a merged Chrome trace-event JSON of the "
                             "whole evaluation to PATH (Perfetto-loadable)")
    parser.add_argument("--events", type=str, default=None, metavar="PATH",
                        help="append every telemetry event to this JSONL "
                             "run ledger (equivalent to REPRO_EVENTS)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live engine gauges as Prometheus text "
                             "on http://127.0.0.1:PORT/metrics")
    parser.add_argument("--progress", action="store_true",
                        help="render a live progress line from worker "
                             "heartbeats (equivalent to REPRO_PROGRESS=1)")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    args = parser.parse_args()

    # The retry policy is read from the environment by every run_suite
    # call (including the ones inside figure drivers), so flags just
    # override the env vars for this process and its workers.
    if args.retries is not None:
        os.environ["REPRO_TASK_RETRIES"] = str(max(0, args.retries))
    if args.task_timeout is not None:
        os.environ["REPRO_TASK_TIMEOUT"] = str(args.task_timeout)
    if args.progress:
        os.environ["REPRO_PROGRESS"] = "1"

    # A process-wide span recorder makes every run_suite call below —
    # including the ones buried inside figure drivers — record into one
    # merged timeline (see repro.analysis.experiments).
    recorder = None
    if args.trace:
        from repro.obs.spans import SpanRecorder, set_span_recorder

        recorder = SpanRecorder(role="evaluation")
        set_span_recorder(recorder)

    # One event bus for the whole campaign: every run_suite call below
    # reuses the installed bus, so all figure drivers append to a single
    # ledger and feed a single set of live gauges.
    bus = None
    metrics_server = None
    if args.events or args.metrics_port is not None:
        from repro.obs.events import open_bus, set_event_bus

        bus = open_bus(args.events)
        if args.metrics_port is not None:
            from repro.obs.exporthttp import (MetricsHTTPServer,
                                              bus_metrics_source)

            metrics_server = MetricsHTTPServer(
                bus_metrics_source(bus), port=args.metrics_port)
            metrics_server.start()
            print(f"metrics: {metrics_server.url}", file=sys.stderr)
        set_event_bus(bus)

    jobs = resolve_jobs(args.jobs)
    # One shared cache for every figure driver in this process: figures
    # 6-10, Table IV, §IV-E, and Figure 16 sweep overlapping (config,
    # workload) fields, and each pair must simulate exactly once.
    cache = RunCache(disk_dir=args.cache_dir)
    set_run_cache(cache)

    checkpoint = None
    checkpoint_path = args.checkpoint or (
        os.path.join(args.cache_dir, "checkpoint.json")
        if args.cache_dir else None
    )
    if args.resume and checkpoint_path is None:
        parser.error("--resume needs --cache-dir (or --checkpoint PATH)")
    if args.resume and not args.cache_dir:
        print("warning: --resume without --cache-dir only tracks progress; "
              "finished pairs still re-simulate (no disk cache to serve "
              "them from)", file=sys.stderr)
    if checkpoint_path is not None:
        checkpoint = CheckpointManifest(checkpoint_path, resume=args.resume)
        set_checkpoint(checkpoint)

    suite = cvp_suite(per_category=args.per_category)
    clouds = cloudsuite_suite(n_instructions=300_000)
    sections = []
    started_all = time.time()

    def section(title, body, started):
        elapsed = time.time() - started
        text = f"== {title} (computed in {elapsed:.0f}s) ==\n{body}"
        sections.append(text)
        print(text, flush=True)
        print(flush=True)

    t = time.time()
    oracle_results = fig1_fig2_oracle(suite)
    section("Figures 1-2", render_fig1(oracle_results) + "\n\n" +
            render_fig2(oracle_results), t)

    t = time.time()
    section("Tables I-II", render_tab1_tab2(), t)

    t = time.time()
    rows, _ = fig6_ipc_vs_storage(suite, FIG6_CONFIGS, jobs=jobs)
    section("Figure 6", render_fig6(rows), t)

    t = time.time()
    curve_eval = run_suite(suite, list(CURVE_CONFIGS), jobs=jobs)
    parts = []
    for fig, metric in (("Fig 7 — normalized IPC", "ipc"),
                        ("Fig 8 — L1I miss ratio", "miss_ratio"),
                        ("Fig 9 — coverage", "coverage"),
                        ("Fig 10 — accuracy", "accuracy")):
        parts.append(render_curves(fig, per_workload_curves(curve_eval, metric)))
    section("Figures 7-10", "\n\n".join(parts), t)

    t = time.time()
    energy_rows, _ = tab4_energy(suite, TAB4_CONFIGS, jobs=jobs)
    section("Table IV", render_tab4(energy_rows), t)

    t = time.time()
    ablation = fig11_ablation(suite)
    section("Figure 11", render_fig11(ablation), t)

    t = time.time()
    internals = figs12_to_15_internals(suite)
    section("Figures 12-15", render_figs12_to_15(internals), t)

    t = time.time()
    physical = sec4e_physical(suite, jobs=jobs)
    section("Section IV-E", render_sec4e(physical), t)

    t = time.time()
    cloud_data, _ = fig16_cloudsuite(clouds, FIG16_CONFIGS, jobs=jobs)
    section("Figure 16", render_fig16(cloud_data), t)

    t = time.time()
    msvc_data, _ = fig_microservice(jobs=jobs)
    section("Microservices (extension)", render_fig_microservice(msvc_data), t)

    total = time.time() - started_all
    lines = [
        "== Timing summary ==",
        f"total wall-clock:    {total:.0f}s (jobs={jobs})",
        f"unique simulations:  {cache.stores}",
        f"cache hits:          {cache.hits} ({cache.disk_hits} from disk)",
        f"wall-clock saved:    ~{cache.wall_seconds_saved:.0f}s of simulation",
    ]
    if cache.disk_corrupt:
        lines.append(
            f"corrupt entries:     {cache.disk_corrupt} rejected and "
            f"re-simulated"
        )
    if checkpoint is not None:
        lines.append(
            f"checkpoint:          {len(checkpoint)} pairs done "
            f"({checkpoint.resumed} resumed, {checkpoint.resumed_hits} "
            f"served from cache, {checkpoint.marked} newly completed)"
        )
    summary = "\n".join(lines)
    sections.append(summary)
    print(summary, flush=True)

    if recorder is not None:
        from repro.obs.chrometrace import write_chrome_trace

        names = {
            pid: ("evaluation" if pid == recorder.pid else "worker")
            + f" (pid {pid})"
            for pid in {s.pid for s in recorder.spans}
        }
        write_chrome_trace(recorder.spans, args.trace, process_names=names)
        print(f"execution trace written to {args.trace} "
              f"(load at https://ui.perfetto.dev)", file=sys.stderr)

    if bus is not None:
        from repro.obs.events import set_event_bus

        if metrics_server is not None:
            metrics_server.stop()
        set_event_bus(None)
        bus.close()
        if args.events:
            print(f"run ledger written to {args.events} "
                  f"(python -m repro events {args.events} --summary)",
                  file=sys.stderr)

    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(sections) + "\n")
        print(f"report written to {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
