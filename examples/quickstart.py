#!/usr/bin/env python3
"""Quickstart: run the Entangling prefetcher on one synthetic workload.

Generates a server-like instruction trace, simulates it with no
prefetcher, with the Entangling-4K prefetcher, and with an ideal L1I,
then prints the headline metrics the paper reports.

Usage::

    python examples/quickstart.py
"""

from repro import EntanglingPrefetcher, NullPrefetcher, simulate
from repro.prefetchers import IdealPrefetcher
from repro.workloads import WorkloadSpec, make_workload


def main() -> None:
    spec = WorkloadSpec(
        name="demo_srv", category="srv", seed=1, n_instructions=500_000
    )
    print(f"generating workload {spec.name} ({spec.n_instructions} instructions)...")
    trace = make_workload(spec)
    print(
        f"  instruction footprint: {trace.footprint_lines()} cache lines "
        f"({trace.footprint_lines() * 64 // 1024} KB), "
        f"{trace.branch_fraction():.1%} branches"
    )

    warmup = spec.n_instructions // 2
    baseline = simulate(trace, NullPrefetcher(), warmup_instructions=warmup).stats
    prefetcher = EntanglingPrefetcher()
    entangled = simulate(trace, prefetcher, warmup_instructions=warmup).stats
    ideal = simulate(trace, IdealPrefetcher(), warmup_instructions=warmup).stats

    print()
    print(f"{'config':14s} {'IPC':>6s} {'speedup':>8s} {'L1I MPKI':>9s} "
          f"{'coverage':>9s} {'accuracy':>9s}")
    for name, stats in (("no-prefetch", baseline),
                        ("Entangling-4K", entangled),
                        ("ideal L1I", ideal)):
        print(
            f"{name:14s} {stats.ipc:6.3f} {stats.ipc / baseline.ipc:8.3f} "
            f"{stats.l1i_mpki:9.2f} {stats.coverage_vs(baseline):9.1%} "
            f"{stats.accuracy:9.1%}"
        )

    es = prefetcher.estats
    print()
    print("Entangling internals:")
    print(f"  entangled pairs created:        {es.pairs_created}")
    print(f"  Entangled-table trigger hits:   {es.trigger_hits}")
    print(f"  avg destinations per hit:       {es.avg_destinations_per_hit:.2f}")
    print(f"  avg source basic-block size:    {es.avg_src_bb_size:.2f} lines")
    print(f"  blocks merged:                  {es.blocks_merged}")
    print(f"  prefetcher storage:             {prefetcher.storage_kb:.2f} KB")


if __name__ == "__main__":
    main()
